"""Dual recursive bipartitioning (Scotch-style) mapping baseline.

Section V-A mentions that *Dual Recursive Bipartitioning* (the strategy of
the Scotch library) "produces good results" before the paper opts for its
matching-based method.  We implement the classical form: recursively split
the thread set in two halves that minimize the communication cut, while
simultaneously splitting the machine in two halves (chips, then L2 domains
within a chip, then cores within an L2), and recurse.

The bipartitioner seeds a balanced split greedily and refines it with
Kernighan–Lin pair swaps until no swap reduces the cut.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.machine.topology import Topology

MatrixLike = Union[CommunicationMatrix, np.ndarray]


def _as_array(comm: MatrixLike) -> np.ndarray:
    if isinstance(comm, CommunicationMatrix):
        return comm.matrix
    return np.asarray(comm, dtype=float)


def _cut_weight(m: np.ndarray, a: Sequence[int], b: Sequence[int]) -> float:
    if not a or not b:
        return 0.0
    return float(m[np.ix_(list(a), list(b))].sum())


def bipartition(m: np.ndarray, threads: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Split ``threads`` into two equal halves minimizing the cut.

    Greedy seeding: the heaviest-communicating pair anchors side A; each
    remaining thread joins the side it communicates with most (subject to
    balance).  Kernighan–Lin refinement then swaps cross pairs while any
    swap lowers the cut.  Deterministic throughout.
    """
    threads = list(threads)
    n = len(threads)
    if n % 2 != 0:
        raise ValueError(f"bipartition needs an even set, got {n}")
    if n == 2:
        return [threads[0]], [threads[1]]
    half = n // 2
    sub = m[np.ix_(threads, threads)]
    # Greedy seed: grow side A around the thread with the heaviest total
    # communication, always absorbing the most-attracted remaining thread.
    totals = sub.sum(axis=1)
    a_local = [int(np.argmax(totals))]
    remaining = [i for i in range(n) if i != a_local[0]]
    while len(a_local) < half:
        attract = sub[np.ix_(remaining, a_local)].sum(axis=1)
        pick = int(np.argmax(attract))
        a_local.append(remaining.pop(pick))
    b_local = remaining
    # Kernighan-Lin refinement: best single swap per round.
    improved = True
    while improved:
        improved = False
        cut = _cut_weight(sub, a_local, b_local)
        best_gain = 1e-12
        best_swap = None
        for ia, x in enumerate(a_local):
            for ib, y in enumerate(b_local):
                na = a_local[:ia] + a_local[ia + 1:] + [y]
                nb = b_local[:ib] + b_local[ib + 1:] + [x]
                gain = cut - _cut_weight(sub, na, nb)
                if gain > best_gain:
                    best_gain = gain
                    best_swap = (ia, ib)
        if best_swap is not None:
            ia, ib = best_swap
            a_local[ia], b_local[ib] = b_local[ib], a_local[ia]
            improved = True
    a = sorted(threads[i] for i in a_local)
    b = sorted(threads[i] for i in b_local)
    return (a, b) if a[0] < b[0] else (b, a)


def _split_cores(topology: Topology, cores: List[int]) -> Tuple[List[int], List[int]]:
    """Split a contiguous core block into its two topological halves."""
    half = len(cores) // 2
    return cores[:half], cores[half:]


def drb_mapping(
    comm: MatrixLike,
    topology: Optional[Topology] = None,
) -> List[int]:
    """Map threads to cores by dual recursive bipartitioning.

    Requires thread count == core count and a power-of-two machine (true
    for the paper's 8-core Harpertown).
    """
    topology = topology or Topology()
    m = _as_array(comm)
    n = m.shape[0]
    if n != topology.num_cores:
        raise ValueError(
            f"DRB maps exactly one thread per core ({topology.num_cores}), got {n}"
        )
    if n & (n - 1):
        raise ValueError(f"DRB requires a power-of-two machine, got {n} cores")
    mapping = [-1] * n

    def recurse(threads: List[int], cores: List[int]) -> None:
        if len(threads) == 1:
            mapping[threads[0]] = cores[0]
            return
        ta, tb = bipartition(m, threads)
        ca, cb = _split_cores(topology, cores)
        recurse(ta, ca)
        recurse(tb, cb)

    recurse(list(range(n)), list(range(n)))
    return mapping
