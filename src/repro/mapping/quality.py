"""Mapping-quality objective: communication volume × core distance.

The standard thread-mapping objective (the quantity Scotch/TreeMatch-style
mappers minimize): a mapping is good when heavily-communicating thread
pairs sit on low-distance core pairs.  The distance matrix comes from the
topology's hop weights (same L2 < same chip < cross chip).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.machine.topology import Topology

MatrixLike = Union[CommunicationMatrix, np.ndarray]


def _as_array(comm: MatrixLike) -> np.ndarray:
    if isinstance(comm, CommunicationMatrix):
        return comm.matrix
    return np.asarray(comm, dtype=float)


def mapping_cost(
    comm: MatrixLike,
    mapping: Sequence[int],
    distance: np.ndarray,
) -> float:
    """Σ over pairs of ``comm[i,j] * distance[core_i, core_j]`` (lower = better)."""
    m = _as_array(comm)
    n = m.shape[0]
    if len(mapping) != n:
        raise ValueError(f"mapping covers {len(mapping)} of {n} threads")
    cores = np.asarray(mapping, dtype=int)
    if len(set(mapping)) != n:
        raise ValueError("mapping must be injective (one thread per core)")
    d = distance[np.ix_(cores, cores)]
    return float((m * d).sum() / 2.0)


def normalized_cost(
    comm: MatrixLike,
    mapping: Sequence[int],
    topology: Topology,
) -> float:
    """Cost scaled to [0, 1]: 0 = all communication inside L2 pairs,
    1 = all communication across chips."""
    m = _as_array(comm)
    total = m.sum() / 2.0
    if total == 0:
        return 0.0
    cost = mapping_cost(comm, mapping, topology.distance_matrix())
    w_min, _, w_max = topology.distance_weights
    lo = total * w_min
    hi = total * w_max
    return float((cost - lo) / (hi - lo)) if hi > lo else 0.0


def communication_locality(
    comm: MatrixLike,
    mapping: Sequence[int],
    topology: Topology,
) -> Dict[str, float]:
    """Fraction of communication at each hierarchy level.

    Returns fractions for ``same_l2``, ``same_chip`` (excluding same-L2)
    and ``cross_chip``; they sum to 1 when any communication exists.
    """
    m = _as_array(comm)
    n = m.shape[0]
    total = m.sum() / 2.0
    out = {"same_l2": 0.0, "same_chip": 0.0, "cross_chip": 0.0}
    if total == 0:
        return out
    for i in range(n):
        for j in range(i + 1, n):
            amt = m[i, j]
            if amt == 0:
                continue
            a, b = mapping[i], mapping[j]
            if topology.l2_of_core(a) == topology.l2_of_core(b):
                out["same_l2"] += amt
            elif topology.chip_of_core(a) == topology.chip_of_core(b):
                out["same_chip"] += amt
            else:
                out["cross_chip"] += amt
    return {k: v / total for k, v in out.items()}


def mapping_quality(
    comm: MatrixLike,
    mapping: Sequence[int],
    topology: Topology,
) -> Dict[str, float]:
    """Summary record: absolute cost, normalized cost, per-level locality."""
    report: Dict[str, float] = {
        "cost": mapping_cost(comm, mapping, topology.distance_matrix()),
        "normalized_cost": normalized_cost(comm, mapping, topology),
    }
    report.update(communication_locality(comm, mapping, topology))
    return report
