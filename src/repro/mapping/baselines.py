"""Baseline mappings the paper (and our ablations) compare against.

* ``os_scheduler_mappings`` — the paper's "OS" bars: whatever the stock
  Linux scheduler happened to do across 100 runs.  Modeled as an ensemble
  of uniform-random placements, which reproduces both the mediocre mean
  and the high run-to-run variance the paper reports (Table V: the OS rows
  have the largest standard deviations).
* ``round_robin_mapping`` — scatter placement: consecutive threads on
  different L2 domains (worst case for neighbour-communication patterns).
* ``packed_mapping`` — compact placement: thread *t* on core *t* (for
  domain-decomposition workloads this is accidentally near-optimal, which
  is why the paper's identity-pinned *detection* runs see the true
  pattern).
* ``random_mapping`` — one uniform draw.
* ``greedy_mapping`` — pair the heaviest communicating pair first;
  the natural cheap alternative to Edmonds matching.
* ``brute_force_mapping`` — exact optimum by exhaustive permutation search
  (feasible for the paper's 8 threads; used as the quality yardstick).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.machine.topology import Topology
from repro.mapping.quality import mapping_cost
from repro.util.rng import RngLike, as_rng

MatrixLike = Union[CommunicationMatrix, np.ndarray]


def _as_array(comm: MatrixLike) -> np.ndarray:
    if isinstance(comm, CommunicationMatrix):
        return comm.matrix
    return np.asarray(comm, dtype=float)


def _check_fit(num_threads: int, topology: Topology) -> None:
    if num_threads > topology.num_cores:
        raise ValueError(
            f"{num_threads} threads exceed {topology.num_cores} cores"
        )


def packed_mapping(num_threads: int, topology: Optional[Topology] = None) -> List[int]:
    """Thread t → core t (fills L2 domains in order)."""
    topology = topology or Topology()
    _check_fit(num_threads, topology)
    return list(range(num_threads))


def round_robin_mapping(num_threads: int, topology: Optional[Topology] = None) -> List[int]:
    """Scatter threads across L2 domains before reusing any.

    Harpertown order: cores 0, 2, 4, 6, 1, 3, 5, 7 — consecutive threads
    never share an L2 until every L2 has one thread.
    """
    topology = topology or Topology()
    _check_fit(num_threads, topology)
    order: List[int] = []
    for slot in range(topology.cores_per_l2):
        for l2 in range(topology.num_l2):
            order.append(l2 * topology.cores_per_l2 + slot)
    return order[:num_threads]


def random_mapping(
    num_threads: int,
    topology: Optional[Topology] = None,
    rng: RngLike = None,
) -> List[int]:
    """One uniform-random placement of threads onto distinct cores."""
    topology = topology or Topology()
    _check_fit(num_threads, topology)
    gen = as_rng(rng)
    cores = gen.permutation(topology.num_cores)[:num_threads]
    return [int(c) for c in cores]


def os_scheduler_mappings(
    num_threads: int,
    topology: Optional[Topology] = None,
    runs: int = 10,
    seed: RngLike = None,
) -> List[List[int]]:
    """Placement ensemble standing in for the stock OS scheduler.

    One independent random placement per run; averaging run metrics over
    the ensemble reproduces the paper's "OS" bars and their variance.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    gen = as_rng(seed)
    return [random_mapping(num_threads, topology, gen) for _ in range(runs)]


def greedy_mapping(
    comm: MatrixLike,
    topology: Optional[Topology] = None,
) -> List[int]:
    """Greedy hierarchical grouping: heaviest pair first, then heaviest
    pair-of-pairs, etc.  Same structure as the paper's algorithm with the
    Edmonds matcher swapped for a greedy matcher — the ablation baseline.
    """
    from repro.mapping.hierarchical import hierarchical_mapping

    def greedy_matcher(weights: np.ndarray) -> List[Tuple[int, int]]:
        n = weights.shape[0]
        order = sorted(
            ((i, j) for i in range(n) for j in range(i + 1, n)),
            key=lambda p: weights[p[0], p[1]],
            reverse=True,
        )
        used = set()
        pairs = []
        for i, j in order:
            if i not in used and j not in used:
                pairs.append((i, j))
                used.add(i)
                used.add(j)
        return pairs

    return hierarchical_mapping(comm, topology, matcher=greedy_matcher)


def brute_force_mapping(
    comm: MatrixLike,
    topology: Optional[Topology] = None,
    max_threads: int = 9,
) -> List[int]:
    """Exact minimum-cost mapping by exhaustive search.

    Complexity is cores!/(cores-threads)!; the guard refuses anything past
    ``max_threads`` (8! = 40320 placements for the paper's machine is
    instant; 12 is already painful).
    """
    topology = topology or Topology()
    m = _as_array(comm)
    n = m.shape[0]
    _check_fit(n, topology)
    if n > max_threads:
        raise ValueError(
            f"brute force limited to {max_threads} threads, got {n}"
        )
    dist = topology.distance_matrix()
    best_cost = float("inf")
    best: Optional[List[int]] = None
    for perm in itertools.permutations(range(topology.num_cores), n):
        cores = np.asarray(perm, dtype=int)
        cost = float((m * dist[np.ix_(cores, cores)]).sum())
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = list(perm)
    assert best is not None
    return best
