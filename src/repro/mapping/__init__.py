"""Thread-mapping algorithms (Section V-A of the paper).

The pipeline is: communication matrix → Edmonds maximum-weight perfect
matching → hierarchical regrouping (pairs, pairs-of-pairs, ...) → placement
of groups onto the machine's cache domains.  Baselines (OS-scheduler
ensemble, round-robin, random, brute-force optimal, greedy) and a
Scotch-style dual-recursive-bipartitioning mapper are provided for
comparison.
"""

from repro.mapping.blossom import max_weight_matching, matching_weight
from repro.mapping.hierarchical import hierarchical_mapping, group_threads
from repro.mapping.baselines import (
    brute_force_mapping,
    greedy_mapping,
    os_scheduler_mappings,
    packed_mapping,
    random_mapping,
    round_robin_mapping,
)
from repro.mapping.drb import drb_mapping
from repro.mapping.online import (
    MigrationCostModel,
    OnlineRemapController,
    OnlineRemapPolicy,
    RemapDecision,
)
from repro.mapping.quality import mapping_cost, mapping_quality, normalized_cost

__all__ = [
    "max_weight_matching",
    "matching_weight",
    "hierarchical_mapping",
    "group_threads",
    "brute_force_mapping",
    "greedy_mapping",
    "os_scheduler_mappings",
    "packed_mapping",
    "random_mapping",
    "round_robin_mapping",
    "drb_mapping",
    "MigrationCostModel",
    "OnlineRemapController",
    "OnlineRemapPolicy",
    "RemapDecision",
    "mapping_cost",
    "mapping_quality",
    "normalized_cost",
]
