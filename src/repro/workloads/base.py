"""Trace representation: per-thread access streams grouped into phases.

A workload is a sequence of :class:`Phase` objects.  Within a phase all
threads run concurrently (the simulator interleaves their streams in
quanta); phases are separated by barriers.  Keeping the phase structure
explicit is what lets the hardware-managed mechanism's *temporal sampling
bias* (Section VI-A of the paper: HM seeing only whichever pair happened
to be exchanging when the scan fired) emerge from the model instead of
being painted on.

Streams are plain numpy arrays (int64 addresses + bool write flags); trace
generation is fully vectorized per the HPC guide — Python only ever loops
over phases and threads, never over individual accesses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.util.rng import RngLike, SeedSequenceFactory


@dataclass(frozen=True)
class StreamSequences:
    """Precomputed per-access derived sequences for one stream.

    The batched simulation engine consumes these instead of re-splitting
    every address on every access: the VPN/line split is vectorized once
    per phase in numpy, and the same-VPN *run* boundaries — the positions
    where the fast path must fall back to a full scalar translation — are
    extracted with one ``flatnonzero`` over the shifted-difference mask.

    Attributes:
        length: number of accesses.
        vpns: per-access virtual page numbers (plain list; the engine's
            inner loop indexes these faster than numpy scalars).
        lines: per-access cache-line numbers.
        writes: per-access write flags as plain bools.
        run_starts: sorted indices where ``vpns[i] != vpns[i-1]`` (always
            includes 0 for non-empty streams).
    """

    length: int
    vpns: List[int]
    lines: List[int]
    writes: List[bool]
    run_starts: List[int]


@dataclass
class AccessStream:
    """One thread's accesses within one phase.

    Attributes:
        addrs: virtual byte addresses, shape (n,), int64.
        writes: write flags, shape (n,), bool.
    """

    addrs: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
        self.writes = np.ascontiguousarray(self.writes, dtype=bool)
        if self.addrs.shape != self.writes.shape or self.addrs.ndim != 1:
            raise ValueError(
                f"addrs {self.addrs.shape} and writes {self.writes.shape} "
                "must be equal-length 1-D arrays"
            )
        self._seq_cache: dict = {}

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    def sequences(self, page_shift: int, line_shift: int) -> StreamSequences:
        """Derived VPN/line/run-boundary sequences (cached per geometry).

        The cache key is ``(page_shift, line_shift)``; a stream replayed
        under the same machine geometry (e.g. the OS-runs ensemble of one
        experiment) pays the vectorized split exactly once.
        """
        key = (page_shift, line_shift)
        cached = self._seq_cache.get(key)
        if cached is not None:
            return cached
        vpns_np = self.addrs >> page_shift
        n = int(vpns_np.shape[0])
        if n:
            boundary = np.empty(n, dtype=bool)
            boundary[0] = True
            np.not_equal(vpns_np[1:], vpns_np[:-1], out=boundary[1:])
            run_starts = np.flatnonzero(boundary).tolist()
        else:
            run_starts = []
        seq = StreamSequences(
            length=n,
            vpns=vpns_np.tolist(),
            lines=(self.addrs >> line_shift).tolist(),
            writes=self.writes.tolist(),
            run_starts=run_starts,
        )
        self._seq_cache[key] = seq
        return seq

    @classmethod
    def empty(cls) -> "AccessStream":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))

    @classmethod
    def reads(cls, addrs: np.ndarray) -> "AccessStream":
        """All-read stream over ``addrs``."""
        a = np.asarray(addrs, dtype=np.int64)
        return cls(a, np.zeros(len(a), dtype=bool))

    @classmethod
    def writes_only(cls, addrs: np.ndarray) -> "AccessStream":
        """All-write stream over ``addrs``."""
        a = np.asarray(addrs, dtype=np.int64)
        return cls(a, np.ones(len(a), dtype=bool))

    @classmethod
    def mixed(
        cls, addrs: np.ndarray, write_fraction: float, rng: np.random.Generator
    ) -> "AccessStream":
        """Stream over ``addrs`` with a random ``write_fraction`` of stores."""
        a = np.asarray(addrs, dtype=np.int64)
        w = rng.random(len(a)) < write_fraction
        return cls(a, w)

    def pages(self, page_size: int = 4096) -> np.ndarray:
        """Distinct virtual page numbers touched (sorted)."""
        shift = int(page_size).bit_length() - 1
        return np.unique(self.addrs >> shift)


def concat_streams(streams: Sequence[AccessStream]) -> AccessStream:
    """Concatenate streams in order (one thread's sub-steps within a phase)."""
    streams = [s for s in streams if len(s)]
    if not streams:
        return AccessStream.empty()
    return AccessStream(
        np.concatenate([s.addrs for s in streams]),
        np.concatenate([s.writes for s in streams]),
    )


def interleave_streams(
    streams: Sequence[AccessStream], block: int, rng: np.random.Generator | None = None
) -> AccessStream:
    """Interleave several streams block-by-block into one stream.

    Used by kernels whose threads alternate between sub-activities (e.g.
    compute on private data interspersed with halo reads) so the TLB sees a
    realistic mixture rather than long single-region runs.
    """
    streams = [s for s in streams if len(s)]
    if not streams:
        return AccessStream.empty()
    if len(streams) == 1:
        return streams[0]
    chunks_a: List[np.ndarray] = []
    chunks_w: List[np.ndarray] = []
    cursors = [0] * len(streams)
    order = list(range(len(streams)))
    remaining = sum(len(s) for s in streams)
    while remaining > 0:
        if rng is not None:
            rng.shuffle(order)
        for i in order:
            s = streams[i]
            c = cursors[i]
            if c >= len(s):
                continue
            end = min(c + block, len(s))
            chunks_a.append(s.addrs[c:end])
            chunks_w.append(s.writes[c:end])
            remaining -= end - c
            cursors[i] = end
    return AccessStream(np.concatenate(chunks_a), np.concatenate(chunks_w))


@dataclass
class Phase:
    """One barrier-delimited parallel region: one stream per thread."""

    name: str
    streams: List[AccessStream]

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("a phase needs at least one thread stream")

    @property
    def num_threads(self) -> int:
        return len(self.streams)

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Phase({self.name!r}, threads={self.num_threads}, "
            f"accesses={self.total_accesses})"
        )


class Workload(abc.ABC):
    """A parallel application, as seen through its memory accesses.

    Subclasses implement :meth:`generate_phases`; the public entry point
    :meth:`phases` wires in deterministic per-workload seeding.

    Attributes:
        name: short identifier ("bt", "cg", ... or a synthetic label).
        num_threads: number of application threads.
        pattern_class: documented communication structure, one of
            {"domain", "domain+distant", "homogeneous", "none", "irregular",
            "pipeline", "master-worker"} — used by tests to assert that the
            detected matrices have the right shape.
    """

    name: str = "workload"
    pattern_class: str = "irregular"

    def __init__(self, num_threads: int = 8, seed: RngLike = None):
        if num_threads < 2:
            raise ValueError("workloads need at least 2 threads")
        self.num_threads = num_threads
        self.seeds = SeedSequenceFactory(seed)

    @abc.abstractmethod
    def generate_phases(self) -> Iterator[Phase]:
        """Yield the phases of one full execution."""

    def phases(self) -> Iterator[Phase]:
        """Iterate phases, validating thread counts."""
        for phase in self.generate_phases():
            if phase.num_threads != self.num_threads:
                raise ValueError(
                    f"{self.name}: phase {phase.name!r} has "
                    f"{phase.num_threads} streams, expected {self.num_threads}"
                )
            yield phase

    def materialize(self) -> List[Phase]:
        """All phases as a list (small workloads / tests)."""
        return list(self.phases())

    def total_accesses(self) -> int:
        """Total access count over the whole execution."""
        return sum(p.total_accesses for p in self.phases())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, threads={self.num_threads})"
