"""Phase-shifting composite workloads: splices of existing kernels.

The paper's benchmarks keep one communication pattern for their whole
run, which is exactly why its one-shot mapping works.  Online remapping
needs the opposite: applications whose pattern *changes* mid-run.  A
:class:`CompositeWorkload` builds one by splicing full kernels end to
end — e.g. ``LU → FT → IS`` runs a domain-decomposition pattern, then a
homogeneous all-to-all, then an irregular one, with a barrier between
segments.  A static mapping can fit at most one segment; an adaptive
policy should win on the others.

Each segment's addresses are rebased into a disjoint slice of the
virtual address space (segment ``k`` shifted by ``k << rebase_shift``):
every kernel allocates its arrays from the same simulated base address,
and without the rebase, segment k+1's pages would alias segment k's,
fabricating sharing across the splice boundary that neither application
actually has.

``shared_space=True`` deliberately skips the rebase: every segment is
the *same* kernel instance re-run over the *same* data, with thread
roles permuted between segments.  That models a mid-run data
repartitioning (e.g. an adaptive-mesh rebalance): the arrays persist,
only ownership moves.  It is also the scenario where online remapping
physically pays — the handed-off working set stays warm in the old
owners' caches, so a remap that follows the data restores locality a
static placement has permanently lost.  With rebased (disjoint)
segments, every boundary is a cold restart: by the time any detector
can see the new pattern, the new working set is warm and a migration's
refetch storm exceeds the remaining placement benefit.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.util.rng import as_rng, derive_seed
from repro.workloads.base import AccessStream, Phase, Workload
from repro.workloads.npb import make_npb_workload


class CompositeWorkload(Workload):
    """Several workloads spliced end to end as one phase-shifting run.

    Args:
        segments: the component workloads, executed in order.  All must
            agree on ``num_threads``.
        name: label (defaults to "a+b+c" from the segment names).
        rebase_shift: log2 of the per-segment address-space slice; each
            segment's addresses are offset by ``index << rebase_shift``
            to keep slices disjoint.
        permutations: optional per-segment thread relabelings —
            ``permutations[k][t]`` is the thread that executes segment
            ``k``'s role ``t`` (None = identity).  This models mid-run
            data repartitioning: the same kernel re-run under a permuted
            decomposition has the *same* pattern over *different* thread
            pairs, so a placement fit to the first segment is scattered
            for the second — the sharpest possible case for online
            remapping, since no static mapping fits both.
        shared_space: skip the per-segment address rebase — segments
            alias the same data.  Only meaningful when the segments
            really are reruns of one kernel instance (a repartitioning,
            not a different application); combine with ``permutations``.
    """

    pattern_class = "phase-shifting"

    def __init__(
        self,
        segments: Sequence[Workload],
        name: Optional[str] = None,
        rebase_shift: int = 40,
        permutations: Optional[Sequence[Optional[Sequence[int]]]] = None,
        shared_space: bool = False,
    ):
        if not segments:
            raise ValueError("a composite needs at least one segment")
        threads = {seg.num_threads for seg in segments}
        if len(threads) != 1:
            raise ValueError(
                f"segments disagree on thread count: {sorted(threads)}"
            )
        if rebase_shift < 30:
            raise ValueError(
                "rebase_shift must be >= 30 (segment slices must dwarf "
                "any kernel's footprint)"
            )
        if shared_space and len({seg.name for seg in segments}) != 1:
            raise ValueError(
                "shared_space splices must rerun one kernel (got "
                f"{sorted({seg.name for seg in segments})}); different "
                "applications do not share data"
            )
        super().__init__(num_threads=segments[0].num_threads)
        self.segments: List[Workload] = list(segments)
        self.name = name or "+".join(seg.name for seg in segments)
        self.rebase_shift = rebase_shift
        self.shared_space = shared_space
        n = self.num_threads
        if permutations is None:
            permutations = [None] * len(self.segments)
        if len(permutations) != len(self.segments):
            raise ValueError(
                f"{len(permutations)} permutations for "
                f"{len(self.segments)} segments"
            )
        self.permutations: List[Optional[List[int]]] = []
        for perm in permutations:
            if perm is None:
                self.permutations.append(None)
                continue
            perm = list(perm)
            if sorted(perm) != list(range(n)):
                raise ValueError(
                    f"not a permutation of 0..{n - 1}: {perm}"
                )
            self.permutations.append(perm)

    def generate_phases(self) -> Iterator[Phase]:
        for index, segment in enumerate(self.segments):
            offset = 0 if self.shared_space else index << self.rebase_shift
            perm = self.permutations[index]
            for phase in segment.phases():
                rebased = [
                    AccessStream(stream.addrs + offset, stream.writes)
                    for stream in phase.streams
                ]
                if perm is not None:
                    relabeled = [rebased[0]] * len(rebased)
                    for role, thread in enumerate(perm):
                        relabeled[thread] = rebased[role]
                    rebased = relabeled
                yield Phase(f"{segment.name}.{phase.name}", rebased)


def make_splice(
    names: Sequence[str],
    num_threads: int = 8,
    scale: float = 1.0,
    seed: Optional[int] = None,
    repartition: bool = False,
    shared_space: bool = False,
) -> CompositeWorkload:
    """Splice NPB kernels by name: ``make_splice(["lu", "ft", "is"])``.

    Each segment gets an independent seed derived from ``seed`` and its
    position, so splices are fully deterministic yet segments don't
    share random streams.

    With ``repartition=True`` every segment after the first also gets a
    seed-derived thread permutation (a mid-run data repartitioning): the
    communication structure survives but lands on different thread
    pairs, so no single static placement fits the whole run.

    With ``shared_space=True`` (requires every name to be the same
    kernel) the segments are identically-seeded reruns over one address
    space — the repartitioning moves ownership of *persistent* data,
    the scenario where a live remap can follow the data and win.
    """
    if not names:
        raise ValueError("a splice needs at least one kernel name")
    base = 0 if seed is None else seed
    segments = [
        make_npb_workload(
            name,
            num_threads=num_threads,
            scale=scale,
            seed=(
                # One data layout shared by every rerun vs. independent
                # per-segment streams for disjoint splices.
                derive_seed(base, "splice", 0, name.lower())
                if shared_space
                else derive_seed(base, "splice", index, name.lower())
            ),
        )
        for index, name in enumerate(names)
    ]
    permutations: List[Optional[List[int]]] = [None] * len(segments)
    if repartition:
        for index in range(1, len(segments)):
            rng = as_rng(derive_seed(base, "splice-perm", index))
            permutations[index] = rng.permutation(num_threads).tolist()
    return CompositeWorkload(
        segments, permutations=permutations, shared_space=shared_space
    )
