"""Trace persistence: save and replay workload access streams.

The related work stores raw memory traces ("more than 100 gigabytes",
Barrow-Williams et al.); our page/line-granular phase traces compress to
megabytes as ``.npz``.  Persisting traces lets users

* capture a workload once and replay it across machine/mapping
  configurations with *identical* accesses (tighter experiments than
  regenerating with a seed),
* import traces produced by external tools (anything that can write the
  simple per-phase arrays).

Format (single compressed .npz):
    meta_num_threads, meta_num_phases : int arrays (scalars)
    phase{i}_name                     : str array (scalar)
    phase{i}_thread{t}_addrs          : int64 array
    phase{i}_thread{t}_writes         : bool array
"""

from __future__ import annotations

import pathlib
from typing import Iterator, List, Sequence, Union

import numpy as np

from repro.util.rng import RngLike
from repro.workloads.base import AccessStream, Phase, Workload

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_trace(phases: "Workload | Sequence[Phase]", path: PathLike) -> int:
    """Write a workload's phases to ``path`` (.npz).  Returns phase count.

    Accepts a :class:`Workload` (materialized on the fly) or a phase list.
    """
    if isinstance(phases, Workload):
        phases = phases.materialize()
    else:
        phases = list(phases)
    if not phases:
        raise ValueError("cannot save an empty trace")
    num_threads = phases[0].num_threads
    arrays = {
        "meta_version": np.array(_FORMAT_VERSION),
        "meta_num_threads": np.array(num_threads),
        "meta_num_phases": np.array(len(phases)),
    }
    for i, phase in enumerate(phases):
        if phase.num_threads != num_threads:
            raise ValueError(
                f"phase {i} has {phase.num_threads} threads, expected {num_threads}"
            )
        arrays[f"phase{i}_name"] = np.array(phase.name)
        for t, stream in enumerate(phase.streams):
            arrays[f"phase{i}_thread{t}_addrs"] = stream.addrs
            arrays[f"phase{i}_thread{t}_writes"] = stream.writes
    np.savez_compressed(path, **arrays)
    return len(phases)


def load_trace(path: PathLike) -> List[Phase]:
    """Read phases back from an .npz written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        if "meta_version" not in data:
            raise ValueError(f"{path}: not a repro trace file")
        version = int(data["meta_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace format v{version}, this build reads v{_FORMAT_VERSION}"
            )
        num_threads = int(data["meta_num_threads"])
        num_phases = int(data["meta_num_phases"])
        phases = []
        for i in range(num_phases):
            name = str(data[f"phase{i}_name"])
            streams = [
                AccessStream(
                    data[f"phase{i}_thread{t}_addrs"],
                    data[f"phase{i}_thread{t}_writes"],
                )
                for t in range(num_threads)
            ]
            phases.append(Phase(name, streams))
    return phases


class TraceWorkload(Workload):
    """A workload replayed from a saved trace file.

    The trace is loaded once at construction; iteration replays it
    verbatim (the seed machinery is unused — a trace IS its randomness).
    """

    name = "trace"
    pattern_class = "recorded"

    def __init__(self, path: PathLike, seed: RngLike = None):
        self._phases = load_trace(path)
        self.path = pathlib.Path(path)
        super().__init__(num_threads=self._phases[0].num_threads, seed=seed)
        self.name = f"trace:{self.path.stem}"

    def generate_phases(self) -> Iterator[Phase]:
        yield from self._phases
