"""Workloads: synthetic trace kernels standing in for the NAS benchmarks.

The detection mechanism only ever observes page-level memory-access
streams, so each workload is a *trace kernel*: it lays out the benchmark's
arrays in a simulated virtual address space and emits, phase by phase, the
per-thread access streams the real benchmark's data decomposition would
produce.  See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.synthetic import (
    AllToAllWorkload,
    FalseSharingWorkload,
    MasterWorkerWorkload,
    NearestNeighborWorkload,
    PhaseShiftWorkload,
    PipelineWorkload,
    PrivateWorkload,
)
from repro.workloads.npb import NPB_BENCHMARKS, make_npb_workload
from repro.workloads.composite import CompositeWorkload, make_splice

__all__ = [
    "CompositeWorkload",
    "make_splice",
    "AccessStream",
    "Phase",
    "Workload",
    "concat_streams",
    "AllToAllWorkload",
    "FalseSharingWorkload",
    "MasterWorkerWorkload",
    "NearestNeighborWorkload",
    "PhaseShiftWorkload",
    "PipelineWorkload",
    "PrivateWorkload",
    "NPB_BENCHMARKS",
    "make_npb_workload",
]
