"""Thread-label permutation of an existing workload.

The paper's detection-and-mapping protocol must be equivariant under
thread relabeling: which integer names a thread is an artifact of the
runtime, not of the application's communication structure.
:class:`PermutedWorkload` makes that property executable — thread ``i``
of the permuted workload runs the access stream of thread ``perm[i]`` of
the base workload, phase by phase, with addresses untouched.

Composing the placement accordingly (thread ``i`` on the core the base
run gave ``perm[i]``) yields a *physically identical* simulation, so
every counter matches exactly and the detected communication matrix is
the exact relabeling ``M'[i, j] == M[perm[i], perm[j]]``.  The
metamorphic suite (``tests/experiments/test_metamorphic.py``) holds the
protocol to that equality.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.workloads.base import Phase, Workload


def check_permutation(perm: Sequence[int], num_threads: int) -> List[int]:
    """Validate that ``perm`` is a permutation of range(num_threads)."""
    p = [int(x) for x in perm]
    if sorted(p) != list(range(num_threads)):
        raise ValueError(
            f"perm {perm!r} is not a permutation of range({num_threads})")
    return p


class PermutedWorkload(Workload):
    """``base`` with its thread labels permuted: ``i`` runs ``perm[i]``."""

    pattern_class = "irregular"

    def __init__(self, base: Workload, perm: Sequence[int]):
        super().__init__(base.num_threads, seed=0)
        self.base = base
        self.perm = check_permutation(perm, base.num_threads)
        self.name = f"{base.name}-perm"
        self.pattern_class = base.pattern_class

    def generate_phases(self) -> Iterator[Phase]:
        for phase in self.base.phases():
            yield Phase(
                name=phase.name,
                streams=[phase.streams[self.perm[i]]
                         for i in range(self.num_threads)],
            )
