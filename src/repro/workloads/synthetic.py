"""Parameterized synthetic workloads with known communication ground truth.

These are the controlled inputs for unit/property tests and ablations: each
class produces a pattern whose communication matrix is known *by
construction* (ring, pipeline, star, all-to-all, none), so detector and
mapper behaviour can be asserted exactly — unlike the NPB kernels, whose
patterns are realistic but noisy.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import boundary_pages, random_touch, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams


class NearestNeighborWorkload(Workload):
    """1-D domain decomposition: thread t shares slab borders with t±1.

    Ground truth: a tridiagonal-ish communication matrix — the archetype of
    BT/SP/MG-style patterns.
    """

    name = "synthetic-neighbor"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 4, slab_bytes: int = 64 * 1024,
                 halo_bytes: int = 8 * 1024, write_fraction: float = 0.3,
                 ring: bool = False, code_bytes: int = 0,
                 master_init: bool = False):
        super().__init__(num_threads, seed)
        #: Thread 0 writes every slab before parallel work begins — the
        #: classic first-touch NUMA anti-pattern (all pages homed on the
        #: master's chip).
        self.master_init = master_init
        self.iterations = iterations
        self.halo_bytes = halo_bytes
        self.write_fraction = write_fraction
        self.ring = ring
        self.space = AddressSpace()
        self.slabs = [
            self.space.allocate(f"slab{t}", slab_bytes)
            for t in range(num_threads)
        ]
        # Optional shared read-only region standing in for program text:
        # every thread fetches from it each iteration.  Not communication
        # in the paper's sense (Section III-A1) — used to test the
        # detectors' instruction-page filtering.
        self.code = (
            self.space.allocate("code", code_bytes) if code_bytes else None
        )

    def code_pages(self) -> List[int]:
        """Virtual page numbers of the shared code region (empty if none)."""
        return list(self.code.pages()) if self.code is not None else []

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        if self.master_init:
            init_rng = self.seeds.generator("init")
            init = [AccessStream.empty() for _ in range(n)]
            init[0] = AccessStream.mixed(
                np.concatenate([sweep(slab) for slab in self.slabs]),
                0.9, init_rng,
            )
            yield Phase("init", init)
        for it in range(self.iterations):
            compute = []
            for t in range(n):
                rng = self.seeds.generator("compute", it, t)
                parts = [AccessStream.mixed(
                    sweep(self.slabs[t]), self.write_fraction, rng
                )]
                if self.code is not None:
                    parts.append(AccessStream.reads(sweep(self.code)))
                compute.append(concat_streams(parts))
            yield Phase(f"compute{it}", compute)
            exchange = []
            for t in range(n):
                parts = []
                left = t - 1 if t > 0 else (n - 1 if self.ring else None)
                right = t + 1 if t < n - 1 else (0 if self.ring else None)
                if left is not None:
                    parts.append(AccessStream.reads(
                        boundary_pages(self.slabs[left], self.halo_bytes, "high")
                    ))
                if right is not None:
                    parts.append(AccessStream.reads(
                        boundary_pages(self.slabs[right], self.halo_bytes, "low")
                    ))
                # Refresh own borders (writes: the stencil update).
                rng = self.seeds.generator("border", it, t)
                own = np.concatenate([
                    boundary_pages(self.slabs[t], self.halo_bytes, "low"),
                    boundary_pages(self.slabs[t], self.halo_bytes, "high"),
                ])
                parts.append(AccessStream.mixed(own, 0.5, rng))
                exchange.append(concat_streams(parts))
            yield Phase(f"exchange{it}", exchange)


class PipelineWorkload(Workload):
    """Producer→consumer chain: thread t writes buffer t, thread t+1 reads it.

    Ground truth: communication only on the superdiagonal — an asymmetric
    (direction-wise) pattern that still yields a symmetric matrix.
    """

    name = "synthetic-pipeline"
    pattern_class = "pipeline"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 4, buffer_bytes: int = 32 * 1024):
        super().__init__(num_threads, seed)
        self.iterations = iterations
        self.space = AddressSpace()
        self.buffers = [
            self.space.allocate(f"buf{t}", buffer_bytes)
            for t in range(num_threads)
        ]

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        for it in range(self.iterations):
            streams = []
            for t in range(n):
                parts = [AccessStream.writes_only(sweep(self.buffers[t]))]
                if t > 0:
                    parts.append(AccessStream.reads(sweep(self.buffers[t - 1])))
                streams.append(concat_streams(parts))
            yield Phase(f"stage{it}", streams)


class MasterWorkerWorkload(Workload):
    """Thread 0 distributes work to and collects results from all others.

    Ground truth: a star — row/column 0 dominates the matrix.
    """

    name = "synthetic-master-worker"
    pattern_class = "master-worker"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 4, task_bytes: int = 16 * 1024,
                 private_bytes: int = 64 * 1024):
        super().__init__(num_threads, seed)
        self.iterations = iterations
        self.space = AddressSpace()
        self.taskqs = [
            self.space.allocate(f"task{t}", task_bytes)
            for t in range(num_threads)
        ]
        self.scratch = [
            self.space.allocate(f"scratch{t}", private_bytes)
            for t in range(num_threads)
        ]

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        for it in range(self.iterations):
            streams = []
            for t in range(n):
                if t == 0:
                    # Master writes every worker's task queue, reads results.
                    parts = [
                        AccessStream.writes_only(sweep(self.taskqs[w]))
                        for w in range(1, n)
                    ] + [
                        AccessStream.reads(sweep(self.taskqs[w]))
                        for w in range(1, n)
                    ]
                else:
                    rng = self.seeds.generator("work", it, t)
                    parts = [
                        AccessStream.reads(sweep(self.taskqs[t])),
                        AccessStream.mixed(sweep(self.scratch[t]), 0.4, rng),
                        AccessStream.writes_only(sweep(self.taskqs[t])),
                    ]
                streams.append(concat_streams(parts))
            yield Phase(f"round{it}", streams)


class AllToAllWorkload(Workload):
    """Every thread reads equal slices of every other thread's buffer.

    Ground truth: homogeneous — the FT-style pattern that thread mapping
    cannot improve (paper Section VI-B).
    """

    name = "synthetic-alltoall"
    pattern_class = "homogeneous"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 3, buffer_bytes: int = 32 * 1024):
        super().__init__(num_threads, seed)
        self.iterations = iterations
        self.space = AddressSpace()
        self.buffers = [
            self.space.allocate(f"panel{t}", buffer_bytes)
            for t in range(num_threads)
        ]

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        for it in range(self.iterations):
            produce = [
                AccessStream.writes_only(sweep(self.buffers[t])) for t in range(n)
            ]
            yield Phase(f"produce{it}", produce)
            slice_bytes = self.buffers[0].size // n
            exchange = []
            for t in range(n):
                parts = []
                for other in range(n):
                    if other == t:
                        continue
                    lo = t * slice_bytes
                    parts.append(AccessStream.reads(
                        sweep(self.buffers[other], lo, lo + slice_bytes)
                    ))
                exchange.append(concat_streams(parts))
            yield Phase(f"transpose{it}", exchange)


class PhaseShiftWorkload(Workload):
    """Communication pattern that *changes* mid-run (dynamic behaviour).

    First half: nearest-neighbour pairs (t ↔ t+1 for even t).  Second
    half: the partner permutation flips to t ↔ t + n/2 (first half of the
    threads pairs with the second half).  Any static mapping is wrong for
    one of the halves — the test case for the paper's future-work dynamic
    migration (Section III-B4 / VII).
    """

    name = "synthetic-phase-shift"
    pattern_class = "dynamic"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations_per_epoch: int = 4, buffer_bytes: int = 48 * 1024):
        if num_threads % 2:
            raise ValueError("PhaseShiftWorkload needs an even thread count")
        super().__init__(num_threads, seed)
        self.iterations_per_epoch = iterations_per_epoch
        self.space = AddressSpace()
        # One shared buffer per pair relationship, epoch-specific.
        self.epoch_buffers = {}
        for epoch, pairs in enumerate(self._epoch_pairs()):
            for a, b in pairs:
                self.epoch_buffers[(epoch, a, b)] = self.space.allocate(
                    f"shift.e{epoch}.{a}-{b}", buffer_bytes
                )

    def _epoch_pairs(self) -> Iterator[List[Tuple[int, int]]]:
        n = self.num_threads
        yield [(t, t + 1) for t in range(0, n, 2)]            # epoch 0
        yield [(t, t + n // 2) for t in range(n // 2)]        # epoch 1

    def partners(self, epoch: int) -> List[Tuple[int, int]]:
        """The pairing active during ``epoch`` (for test assertions)."""
        return list(self._epoch_pairs())[epoch]

    def generate_phases(self) -> Iterator[Phase]:
        for epoch, pairs in enumerate(self._epoch_pairs()):
            partner_of = {}
            for a, b in pairs:
                partner_of[a] = b
                partner_of[b] = a
            for it in range(self.iterations_per_epoch):
                streams = []
                for t in range(self.num_threads):
                    p = partner_of[t]
                    key = (epoch, min(t, p), max(t, p))
                    buf = self.epoch_buffers[key]
                    rng = self.seeds.generator("shift", epoch, it, t)
                    streams.append(AccessStream.mixed(sweep(buf), 0.4, rng))
                yield Phase(f"shift.e{epoch}.i{it}", streams)


class FalseSharingWorkload(Workload):
    """Classical false sharing: thread pairs write *different bytes of the
    same cache lines*.

    No data is logically shared, yet the MESI protocol ping-pongs the
    lines between the writers' caches.  The paper's stance (Section
    III-B5/IV-C) is that page-granular detection counts this as
    communication "regardless of the offset" — deliberately, because
    placing the false-sharers together genuinely removes the coherence
    storm.  This workload exists to test that stance at machine level.
    """

    name = "synthetic-false-sharing"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 4, shared_lines: int = 256,
                 rounds_per_iteration: int = 4):
        if num_threads % 2:
            raise ValueError("FalseSharingWorkload needs an even thread count")
        super().__init__(num_threads, seed)
        self.iterations = iterations
        self.shared_lines = shared_lines
        self.rounds = rounds_per_iteration
        self.space = AddressSpace()
        # One falsely-shared array per thread pair: even threads write the
        # first half of every line, odd threads the second half.
        self.arrays = [
            self.space.allocate(f"false{k}", shared_lines * 64)
            for k in range(num_threads // 2)
        ]

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        for it in range(self.iterations):
            streams = []
            for t in range(n):
                region = self.arrays[t // 2]
                offset = 0 if t % 2 == 0 else 32  # disjoint halves of lines
                addrs = np.tile(
                    sweep(region, start=offset, stride=64), self.rounds
                )
                streams.append(AccessStream.writes_only(addrs))
            yield Phase(f"false{it}", streams)


class PrivateWorkload(Workload):
    """No sharing at all — the EP-style null pattern.

    Ground truth: the zero matrix.
    """

    name = "synthetic-private"
    pattern_class = "none"

    def __init__(self, num_threads: int = 8, seed: RngLike = None,
                 iterations: int = 4, private_bytes: int = 128 * 1024,
                 random_accesses: int = 2048):
        super().__init__(num_threads, seed)
        self.iterations = iterations
        self.random_accesses = random_accesses
        self.space = AddressSpace()
        self.slabs = [
            self.space.allocate(f"private{t}", private_bytes)
            for t in range(num_threads)
        ]

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            streams = []
            for t in range(self.num_threads):
                rng = self.seeds.generator("ep", it, t)
                addrs = np.concatenate([
                    sweep(self.slabs[t]),
                    random_touch(self.slabs[t], self.random_accesses, rng),
                ])
                streams.append(AccessStream.mixed(addrs, 0.3, rng))
            yield Phase(f"mc{it}", streams)
