"""Vectorized access-pattern primitives shared by all trace kernels.

Every generator returns an int64 numpy array of byte addresses; kernels
compose these into :class:`~repro.workloads.base.AccessStream` objects.
Strides default to one access per cache line — the granularity at which
both the cache model and (after the page split) the TLB see behaviour —
keeping traces compact without changing which lines/pages get touched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.address import Region

#: Default inter-access stride: one touch per 64-byte cache line.
LINE_STRIDE = 64


def sweep(region: Region, start: int = 0, end: Optional[int] = None,
          stride: int = LINE_STRIDE, repeats: int = 1) -> np.ndarray:
    """Sequential sweep over ``region[start:end]``, repeated ``repeats`` times.

    The bread-and-butter pattern of structured-grid kernels: a stencil
    update marches linearly through the subdomain.
    """
    if end is None:
        end = region.size
    if not 0 <= start < end <= region.size:
        raise ValueError(
            f"invalid sweep range [{start}, {end}) in region of {region.size} bytes"
        )
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    once = np.arange(start, end, stride, dtype=np.int64) + region.base
    if repeats == 1:
        return once
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return np.tile(once, repeats)


def strided_gather(region: Region, count: int, stride: int,
                   start: int = 0) -> np.ndarray:
    """``count`` accesses at a fixed stride, wrapping around the region.

    Models column-major walks over row-major arrays (matrix transposes,
    FFT butterflies): large strides touch one line per page and blow
    through the TLB reach.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    offs = (start + stride * np.arange(count, dtype=np.int64)) % region.size
    return offs + region.base


def random_touch(region: Region, count: int, rng: np.random.Generator,
                 align: int = LINE_STRIDE, start: int = 0,
                 end: Optional[int] = None) -> np.ndarray:
    """``count`` uniform-random line-aligned touches in ``region[start:end]``.

    Models hash/bucket scatter (IS key ranking) and pointer chasing; with a
    range much larger than TLB reach this is what drives a benchmark's TLB
    miss rate up.
    """
    if end is None:
        end = region.size
    if not 0 <= start < end <= region.size:
        raise ValueError(f"invalid range [{start}, {end})")
    if count < 0:
        raise ValueError("count must be non-negative")
    slots = (end - start) // align
    if slots <= 0:
        raise ValueError("range smaller than alignment")
    offs = start + rng.integers(0, slots, size=count, endpoint=False) * align
    return offs.astype(np.int64) + region.base


def hotspot_touch(region: Region, count: int, rng: np.random.Generator,
                  hot_fraction: float = 0.1, hot_probability: float = 0.9,
                  align: int = LINE_STRIDE) -> np.ndarray:
    """Zipf-ish accesses: ``hot_probability`` of touches land in the first
    ``hot_fraction`` of the region (sparse-matrix row bands, lock words)."""
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0 <= hot_probability <= 1:
        raise ValueError("hot_probability must be in [0, 1]")
    hot_end = max(align, int(region.size * hot_fraction) // align * align)
    is_hot = rng.random(count) < hot_probability
    n_hot = int(is_hot.sum())
    out = np.empty(count, dtype=np.int64)
    if n_hot:
        out[is_hot] = random_touch(region, n_hot, rng, align=align, end=hot_end)
    n_cold = count - n_hot
    if n_cold:
        if hot_end >= region.size:
            out[~is_hot] = random_touch(region, n_cold, rng, align=align)
        else:
            out[~is_hot] = random_touch(
                region, n_cold, rng, align=align, start=hot_end
            )
    return out


def boundary_pages(region: Region, halo_bytes: int, side: str,
                   stride: int = LINE_STRIDE) -> np.ndarray:
    """Addresses of one boundary strip of a subdomain slab.

    ``side="low"`` is the first ``halo_bytes`` of the region, ``"high"``
    the last — what a domain-decomposition neighbour reads during halo
    exchange.
    """
    if not 0 < halo_bytes <= region.size:
        raise ValueError(
            f"halo_bytes {halo_bytes} out of range for region of {region.size}"
        )
    if side == "low":
        return sweep(region, 0, halo_bytes, stride)
    if side == "high":
        return sweep(region, region.size - halo_bytes, region.size, stride)
    raise ValueError(f"side must be 'low' or 'high', got {side!r}")
