"""EP — Embarrassingly Parallel (Monte-Carlo Gaussian pairs).

EP "does not share data between the threads" (paper Section VI-B): each
thread generates and tallies random deviates in private memory, with a
single tiny shared-result reduction at the very end.  The absolute
invalidation/snoop counts are therefore minuscule — which is exactly why
the paper's EP bars bounce around with huge standard deviations and why
mapping cannot (and should not) help.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import random_touch, sweep
from repro.workloads.base import AccessStream, Phase, Workload
from repro.workloads.npb.common import scaled_iters


class EPWorkload(Workload):
    """Pure private compute + one tiny final reduction."""

    name = "ep"
    pattern_class = "none"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.iterations = scaled_iters(12, scale)
        self.space = AddressSpace()
        self.batches = [
            self.space.allocate(f"ep.batch{t}", 96 * 1024)
            for t in range(num_threads)
        ]
        # One shared page of global sums, touched a handful of times total.
        self.result = self.space.allocate("ep.result", 4096)

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            streams = []
            for t in range(self.num_threads):
                rng = self.seeds.generator("ep", it, t)
                addrs = np.concatenate([
                    sweep(self.batches[t]),
                    random_touch(self.batches[t], 512, rng),
                ])
                streams.append(AccessStream.mixed(addrs, 0.35, rng))
            yield Phase(f"ep.batch{it}", streams)
        # Final reduction: every thread adds its tally into the shared page.
        reduction = []
        for t in range(self.num_threads):
            addrs = self.result.base + np.arange(0, 512, 64, dtype=np.int64)
            reduction.append(AccessStream(
                np.concatenate([addrs, addrs]),
                np.concatenate([
                    np.zeros(len(addrs), dtype=bool),
                    np.ones(len(addrs), dtype=bool),
                ]),
            ))
        yield Phase("ep.reduce", reduction)
