"""FT — 3-D Fast Fourier Transform.

The distributed FFT alternates local 1-D transforms over a thread's own
panels with a global transpose in which every thread reads an equal slice
of *every* other thread's panel.  The all-to-all makes the communication
matrix homogeneous ("CG, EP and FT present homogeneous communication
patterns") — every placement is equivalent, so mapping buys nothing.

Slices are read contiguously (the transpose's receive side is a packed
copy), keeping FT's TLB miss rate low as in the paper's Table III; and a
final local pass after the last transpose re-writes the panels that every
other thread just read, which is what generates FT's (mapping-insensitive)
invalidation traffic.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.npb.common import scaled_iters


class FTWorkload(Workload):
    """Local FFT passes + homogeneous all-to-all transpose."""

    name = "ft"
    pattern_class = "homogeneous"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.iterations = scaled_iters(2, scale)
        self.space = AddressSpace()
        self.panels = [
            self.space.allocate(f"ft.panel{t}", 64 * 1024)
            for t in range(num_threads)
        ]

    def _local_phase(self, label: str) -> Phase:
        """Local butterflies: sweep own panel twice, writing results."""
        streams = []
        for t in range(self.num_threads):
            rng = self.seeds.generator("fft", label, t)
            streams.append(
                AccessStream.mixed(sweep(self.panels[t], repeats=2), 0.5, rng)
            )
        return Phase(f"ft.local.{label}", streams)

    def _transpose_phase(self, it: int) -> Phase:
        """Global transpose: contiguous slice reads of everyone's panel."""
        n = self.num_threads
        slice_bytes = self.panels[0].size // n
        transpose = []
        for t in range(n):
            parts = []
            lo = t * slice_bytes
            for other in range(n):
                if other == t:
                    continue
                parts.append(AccessStream.reads(
                    sweep(self.panels[other], lo, lo + slice_bytes)
                ))
            transpose.append(concat_streams(parts))
        return Phase(f"ft.transpose{it}", transpose)

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            yield self._local_phase(str(it))
            yield self._transpose_phase(it)
        # Inverse-transform pass: rewrites the panels everyone just read.
        yield self._local_phase("inverse")
