"""Shared machinery for the NPB trace kernels.

Most NPB benchmarks are structured-grid solvers parallelized by domain
decomposition: each thread owns a contiguous slab of the grid, sweeps it
every iteration, and exchanges halo strips with its slab neighbours.
:class:`GridKernel` implements that skeleton with knobs for the per-
benchmark differences (halo width, sweep count, write intensity, the LU
wavefront's distant-partner exchange, staggered exchange timing).

The benchmark classes in the sibling modules are thin parameterizations of
this skeleton (BT/SP/LU/MG-fine) or standalone generators for the
irregular ones (CG, EP, FT, IS, UA).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.mem.address import AddressSpace, Region
from repro.util.rng import RngLike
from repro.workloads.access import boundary_pages, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams


def scaled_iters(base: int, scale: float) -> int:
    """Scale an iteration count, staying >= 1."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(1, int(round(base * scale)))


@dataclass(frozen=True)
class GridParams:
    """Knobs of the domain-decomposition skeleton.

    Attributes:
        iterations: outer time steps (scaled by the workload's ``scale``).
        slab_bytes: private subdomain bytes per thread.
        halo_bytes: boundary strip shared with each slab neighbour.
        write_fraction: store fraction during slab sweeps.
        boundary_write_fraction: store fraction when refreshing own borders
            (high values drive MESI invalidations on the shared pages).
        sweeps_per_iter: slab sweeps per iteration (compute intensity).
        mirror_fraction: extra exchange with thread ``N-1-t`` as a fraction
            of the halo volume (LU's distant-thread communication).
        stagger: split each exchange into sub-phases where only a sliding
            window of threads is active — the temporal structure that
            biases the HM mechanism's instant sampling.
    """

    iterations: int = 10
    slab_bytes: int = 128 * 1024
    halo_bytes: int = 16 * 1024
    write_fraction: float = 0.3
    boundary_write_fraction: float = 0.5
    sweeps_per_iter: int = 1
    mirror_fraction: float = 0.0
    stagger: bool = False


class GridKernel(Workload):
    """Domain-decomposed structured-grid skeleton (see module docstring)."""

    name = "grid"
    pattern_class = "domain"

    def __init__(
        self,
        params: GridParams,
        num_threads: int = 8,
        scale: float = 1.0,
        seed: RngLike = None,
    ):
        super().__init__(num_threads, seed)
        self.params = params
        self.scale = scale
        self.iterations = scaled_iters(params.iterations, scale)
        self.space = AddressSpace()
        self.slabs: List[Region] = [
            self.space.allocate(f"{self.name}.slab{t}", params.slab_bytes)
            for t in range(num_threads)
        ]

    # -- building blocks (overridable by subclasses) ---------------------------

    def compute_stream(self, t: int, it: int) -> AccessStream:
        """One iteration of stencil compute over thread t's slab."""
        rng = self.seeds.generator("compute", it, t)
        addrs = sweep(self.slabs[t], repeats=self.params.sweeps_per_iter)
        return AccessStream.mixed(addrs, self.params.write_fraction, rng)

    def exchange_stream(self, t: int, it: int) -> AccessStream:
        """Halo exchange for thread t: read neighbours, refresh own borders."""
        p = self.params
        n = self.num_threads
        parts: List[AccessStream] = []
        if t > 0:
            parts.append(AccessStream.reads(
                boundary_pages(self.slabs[t - 1], p.halo_bytes, "high")
            ))
        if t < n - 1:
            parts.append(AccessStream.reads(
                boundary_pages(self.slabs[t + 1], p.halo_bytes, "low")
            ))
        if p.mirror_fraction > 0:
            mirror = n - 1 - t
            if mirror != t:
                mbytes = max(
                    64, int(p.halo_bytes * p.mirror_fraction) // 64 * 64
                )
                side = "high" if mirror > t else "low"
                parts.append(AccessStream.reads(
                    boundary_pages(self.slabs[mirror], mbytes, side)
                ))
        rng = self.seeds.generator("border", it, t)
        own = np.concatenate([
            boundary_pages(self.slabs[t], p.halo_bytes, "low"),
            boundary_pages(self.slabs[t], p.halo_bytes, "high"),
        ])
        parts.append(AccessStream.mixed(own, p.boundary_write_fraction, rng))
        return concat_streams(parts)

    # -- phase emission ----------------------------------------------------------

    def _staggered_exchange(self, it: int) -> Iterator[Phase]:
        """Exchange split into sliding-window sub-phases (pairs go one
        after another), so an HM scan catches only whoever is active."""
        n = self.num_threads
        window = 2
        for lo in range(0, n, window):
            streams = []
            for t in range(n):
                if lo <= t < lo + window:
                    streams.append(self.exchange_stream(t, it))
                else:
                    streams.append(AccessStream.empty())
            yield Phase(f"{self.name}.exchange{it}.w{lo}", streams)

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            yield Phase(
                f"{self.name}.compute{it}",
                [self.compute_stream(t, it) for t in range(self.num_threads)],
            )
            if self.params.stagger:
                yield from self._staggered_exchange(it)
            else:
                yield Phase(
                    f"{self.name}.exchange{it}",
                    [self.exchange_stream(t, it) for t in range(self.num_threads)],
                )
