"""BT — Block Tridiagonal solver.

NPB's BT solves block-tridiagonal systems from an ADI discretization over
a 3-D structured grid, decomposed into per-thread slabs.  Communication is
the classic nearest-neighbour halo exchange ("a lot of communication
between neighboring threads ... most of the shared data is located on the
borders of each sub-domain", paper Section VI-A), at a moderate
communication-to-computation ratio — the paper sees clear invalidation and
snoop reductions from mapping but only a small execution-time gain.
"""

from __future__ import annotations

from repro.util.rng import RngLike
from repro.workloads.npb.common import GridKernel, GridParams


class BTWorkload(GridKernel):
    """Domain decomposition, moderate halo, medium run length."""

    name = "bt"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(
            GridParams(
                iterations=10,
                slab_bytes=256 * 1024,
                halo_bytes=24 * 1024,
                write_fraction=0.35,
                boundary_write_fraction=0.55,
                sweeps_per_iter=1,
            ),
            num_threads=num_threads,
            scale=scale,
            seed=seed,
        )
