"""SP — Scalar Pentadiagonal solver.

Structurally BT's sibling (same ADI-style grid decomposition), but with a
higher communication-to-computation ratio: wider halos relative to the
slab and more time steps.  SP is the paper's best case — the largest
execution-time improvement (−15.3%) and L2-miss reduction (−31.1%) — so
the kernel is parameterized to make locality matter most: large shared
borders, heavily re-read and rewritten every step.
"""

from __future__ import annotations

from repro.util.rng import RngLike
from repro.workloads.npb.common import GridKernel, GridParams


class SPWorkload(GridKernel):
    """Domain decomposition, wide halo, long run."""

    name = "sp"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(
            GridParams(
                iterations=25,
                slab_bytes=256 * 1024,
                halo_bytes=48 * 1024,
                write_fraction=0.3,
                boundary_write_fraction=0.6,
                sweeps_per_iter=1,
            ),
            num_threads=num_threads,
            scale=scale,
            seed=seed,
        )
