"""Synthetic NAS Parallel Benchmark trace kernels (OpenMP, W-class shapes).

Each module reproduces the *memory-access structure* of one NPB benchmark
at the page/line level — the only thing the paper's mechanism observes —
per the substitution documented in DESIGN.md §2.  The registry maps the
paper's benchmark names to factories:

>>> from repro.workloads.npb import make_npb_workload
>>> bt = make_npb_workload("bt", num_threads=8, scale=0.5, seed=1)
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.util.rng import RngLike
from repro.workloads.base import Workload

from repro.workloads.npb.bt import BTWorkload
from repro.workloads.npb.cg import CGWorkload
from repro.workloads.npb.ep import EPWorkload
from repro.workloads.npb.ft import FTWorkload
from repro.workloads.npb.is_ import ISWorkload
from repro.workloads.npb.lu import LUWorkload
from repro.workloads.npb.mg import MGWorkload
from repro.workloads.npb.sp import SPWorkload
from repro.workloads.npb.ua import UAWorkload

#: Benchmark name → workload class, in the paper's order (DC is excluded
#: there too: "We ran all the benchmarks except DC").
NPB_BENCHMARKS: Dict[str, type] = {
    "bt": BTWorkload,
    "cg": CGWorkload,
    "ep": EPWorkload,
    "ft": FTWorkload,
    "is": ISWorkload,
    "lu": LUWorkload,
    "mg": MGWorkload,
    "sp": SPWorkload,
    "ua": UAWorkload,
}


def make_npb_workload(
    name: str,
    num_threads: int = 8,
    scale: float = 1.0,
    seed: RngLike = None,
) -> Workload:
    """Instantiate a benchmark by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in NPB_BENCHMARKS:
        raise KeyError(
            f"unknown NPB benchmark {name!r}; known: {sorted(NPB_BENCHMARKS)}"
        )
    return NPB_BENCHMARKS[key](num_threads=num_threads, scale=scale, seed=seed)


__all__ = [
    "NPB_BENCHMARKS",
    "make_npb_workload",
    "BTWorkload",
    "CGWorkload",
    "EPWorkload",
    "FTWorkload",
    "ISWorkload",
    "LUWorkload",
    "MGWorkload",
    "SPWorkload",
    "UAWorkload",
]
