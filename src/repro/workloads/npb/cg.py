"""CG — Conjugate Gradient with an irregular sparse matrix.

The sparse matrix-vector product reads the shared iterate vector through
an unstructured sparsity pattern: mostly from the reader's own band (and
its immediate neighbours), with a uniform scatter tail across all
segments.  That yields the profile the paper describes: an essentially
homogeneous communication matrix "with traces of a domain decomposition
pattern ... less expressive compared to BT, IS, LU, SP and UA" — and
correspondingly no mapping benefit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import random_touch, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.npb.common import scaled_iters


class CGWorkload(Workload):
    """SpMV iterations: private matrix data + banded reads of a shared vector."""

    name = "cg"
    pattern_class = "homogeneous"

    #: Fraction of vector reads landing in the neighbour band (own ±1
    #: segment); the remainder scatters uniformly — the homogeneous floor.
    NEIGHBOR_BAND_FRACTION = 0.45
    GATHER_ACCESSES = 700

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.iterations = scaled_iters(4, scale)
        self.space = AddressSpace()
        self.matrix = [
            self.space.allocate(f"cg.mat{t}", 64 * 1024)
            for t in range(num_threads)
        ]
        # The shared iterate vector, one owned segment per thread.
        self.vector = [
            self.space.allocate(f"cg.vec{t}", 16 * 1024)
            for t in range(num_threads)
        ]

    def _gather(self, t: int, it: int) -> AccessStream:
        """Irregular reads of the shared vector (the SpMV gather)."""
        rng = self.seeds.generator("gather", it, t)
        n = self.num_threads
        counts = np.zeros(n, dtype=int)
        band = [s for s in (t - 1, t, t + 1) if 0 <= s < n]
        n_band = int(self.GATHER_ACCESSES * self.NEIGHBOR_BAND_FRACTION)
        band_picks = np.bincount(
            rng.integers(0, len(band), size=n_band), minlength=len(band)
        )
        for s, c in zip(band, band_picks):
            counts[s] += int(c)
        scatter = rng.integers(0, n, size=self.GATHER_ACCESSES - n_band)
        counts += np.bincount(scatter, minlength=n)
        parts = []
        for s in range(n):
            if counts[s]:
                parts.append(AccessStream.reads(
                    random_touch(self.vector[s], int(counts[s]), rng)
                ))
        return concat_streams(parts)

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            streams = []
            for t in range(self.num_threads):
                rng = self.seeds.generator("spmv", it, t)
                parts = [
                    AccessStream.reads(sweep(self.matrix[t])),
                    self._gather(t, it),
                    # Update own vector segment (the axpy).
                    AccessStream.mixed(sweep(self.vector[t]), 0.7, rng),
                ]
                streams.append(concat_streams(parts))
            yield Phase(f"cg.iter{it}", streams)
