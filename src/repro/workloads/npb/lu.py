"""LU — Lower-Upper Gauss-Seidel solver.

LU's SSOR sweeps propagate a wavefront through the grid: besides the
nearest-neighbour halo traffic, threads at opposite ends of the
decomposition exchange data ("LU also presents communication with the most
distant threads", paper Section VI-A, citing [10]) — modeled as a
mirror-partner exchange (thread t ↔ thread N−1−t) at a fraction of the
halo volume.  The wavefront also staggers thread activity in time, which
is why only SM (not HM) resolves the distant component in the paper.
"""

from __future__ import annotations

from repro.util.rng import RngLike
from repro.workloads.npb.common import GridKernel, GridParams


class LUWorkload(GridKernel):
    """Domain decomposition + mirror-partner (distant) exchange."""

    name = "lu"
    pattern_class = "domain+distant"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(
            GridParams(
                iterations=10,
                slab_bytes=320 * 1024,
                halo_bytes=32 * 1024,
                write_fraction=0.3,
                boundary_write_fraction=0.55,
                sweeps_per_iter=1,
                mirror_fraction=0.45,
                stagger=True,
            ),
            num_threads=num_threads,
            scale=scale,
            seed=seed,
        )
