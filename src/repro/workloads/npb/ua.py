"""UA — Unstructured Adaptive mesh computation.

UA solves a heat equation on an unstructured, adaptively refined mesh.
The partition gives each thread an element block whose faces are shared
predominantly with the *adjacent* blocks, but — the mesh being
unstructured — with an irregular sprinkling of farther-away partners, and
the adaptive refinement slowly reshuffles the face weights over time.

Face updates are write-heavy (element assembly adds contributions into
shared face arrays), which is why UA shows the paper's largest
invalidation reduction (−41%) once the heavy partners share an L2 — and
why both SM and HM find the (same, optimal) mapping: the pattern is strong
and stable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import random_touch, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.npb.common import scaled_iters


class UAWorkload(Workload):
    """Irregular neighbour-dominant face sharing, write-heavy, adaptive."""

    name = "ua"
    pattern_class = "domain"

    #: Shared face touches per thread per iteration.
    FACE_ACCESSES = 1100
    #: How strongly adjacency decays with partition distance.
    DECAY = 2.4

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.iterations = scaled_iters(20, scale)
        self.space = AddressSpace()
        self.elements = [
            self.space.allocate(f"ua.elem{t}", 160 * 1024)
            for t in range(num_threads)
        ]
        # Shared face arrays, owned by (and allocated with) each block; a
        # neighbour writes into the owner's face region during assembly.
        self.faces = [
            self.space.allocate(f"ua.face{t}", 32 * 1024)
            for t in range(num_threads)
        ]

    def _adjacency(self, t: int, epoch: int) -> np.ndarray:
        """Face-sharing weights from thread t to every block, this epoch.

        Exponential decay in partition distance plus an irregular
        perturbation that changes when the mesh adapts (every 4 steps).
        """
        n = self.num_threads
        rng = self.seeds.generator("mesh", epoch, t)
        dist = np.abs(np.arange(n) - t).astype(float)
        w = np.exp(-self.DECAY * dist)
        w *= 0.7 + 0.6 * rng.random(n)  # unstructured irregularity
        w[t] = 0.0
        total = w.sum()
        return w / total if total > 0 else w

    def generate_phases(self) -> Iterator[Phase]:
        n = self.num_threads
        for it in range(self.iterations):
            epoch = it // 4  # mesh adapts every 4 time steps
            streams = []
            for t in range(n):
                rng = self.seeds.generator("assembly", it, t)
                parts = [
                    AccessStream.mixed(sweep(self.elements[t]), 0.3, rng),
                ]
                weights = self._adjacency(t, epoch)
                counts = rng.multinomial(self.FACE_ACCESSES, weights)
                for u in range(n):
                    if counts[u] == 0:
                        continue
                    # Assembly adds into the partner's face array: writes.
                    parts.append(AccessStream.mixed(
                        random_touch(self.faces[u], int(counts[u]), rng),
                        0.65,
                        rng,
                    ))
                # Own faces get swept every step as well.
                parts.append(AccessStream.mixed(sweep(self.faces[t]), 0.5, rng))
                streams.append(concat_streams(parts))
            yield Phase(f"ua.step{it}", streams)
