"""MG — Multigrid V-cycle.

The fine level behaves like any domain-decomposed stencil (all threads,
nearest-neighbour halos).  On coarse levels the grid no longer has work
for everyone: ownership concentrates on the upper half of the thread set,
where the coarse slabs are *jointly* owned by thread pairs (4,5) and (6,7)
— which is exactly the asymmetry the paper reads off its Figure 4 ("in MG,
[SM] managed to detect that thread pairs 4-5 and 6-7 present more
communication among them compared to thread pairs 0-1 and 2-3").

MG also has the paper's most snoop-dominated profile: coarse-level sharing
is read-mostly (restriction/prolongation reads), so a good mapping removes
a huge fraction of cache-to-cache transfers (paper: −65.4% snoops) while
invalidations drop less.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import boundary_pages, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.npb.common import scaled_iters


class MGWorkload(Workload):
    """V-cycles: fine-level halo exchange + pair-shared coarse slabs."""

    name = "mg"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.cycles = scaled_iters(3, scale)
        self.space = AddressSpace()
        self.fine = [
            self.space.allocate(f"mg.fine{t}", 96 * 1024)
            for t in range(num_threads)
        ]
        # Coarse slabs: one per thread pair in the upper half of the thread
        # set (threads num_threads//2 .. num_threads-1), shared pairwise.
        half = num_threads // 2
        self.coarse_owner_pairs: List[tuple] = []
        for i in range(half, num_threads - 1, 2):
            self.coarse_owner_pairs.append((i, i + 1))
        self.coarse = [
            self.space.allocate(f"mg.coarse{k}", 48 * 1024)
            for k in range(len(self.coarse_owner_pairs))
        ]
        self.halo = 12 * 1024

    def _fine_phase(self, cyc: int, step: str) -> Phase:
        """Fine-grid smoothing: slab sweep + neighbour halo reads."""
        n = self.num_threads
        streams = []
        for t in range(n):
            rng = self.seeds.generator("fine", cyc, step, t)
            parts = [AccessStream.mixed(sweep(self.fine[t]), 0.3, rng)]
            if t > 0:
                parts.append(AccessStream.reads(
                    boundary_pages(self.fine[t - 1], self.halo, "high")
                ))
            if t < n - 1:
                parts.append(AccessStream.reads(
                    boundary_pages(self.fine[t + 1], self.halo, "low")
                ))
            own = np.concatenate([
                boundary_pages(self.fine[t], self.halo, "low"),
                boundary_pages(self.fine[t], self.halo, "high"),
            ])
            parts.append(AccessStream.mixed(own, 0.5, rng))
            streams.append(concat_streams(parts))
        return Phase(f"mg.fine{cyc}.{step}", streams)

    def _coarse_phase(self, cyc: int) -> Phase:
        """Coarse-grid work: each coarse slab read/written by its owner pair.

        Read-mostly (restriction + prolongation interpolate much more than
        they update), giving the snoop-heavy sharing profile.
        """
        n = self.num_threads
        streams: List[AccessStream] = [AccessStream.empty()] * n
        for k, (a, b) in enumerate(self.coarse_owner_pairs):
            region = self.coarse[k]
            rng_a = self.seeds.generator("coarse", cyc, a)
            rng_b = self.seeds.generator("coarse", cyc, b)
            # Both owners sweep the whole coarse slab, lightly writing.
            streams[a] = AccessStream.mixed(sweep(region, repeats=2), 0.15, rng_a)
            streams[b] = AccessStream.mixed(sweep(region, repeats=2), 0.15, rng_b)
        return Phase(f"mg.coarse{cyc}", list(streams))

    def generate_phases(self) -> Iterator[Phase]:
        for cyc in range(self.cycles):
            yield self._fine_phase(cyc, "down")
            yield self._coarse_phase(cyc)
            yield self._fine_phase(cyc, "up")
