"""IS — Integer Sort (bucket sort of uniformly random keys).

Two properties of IS shape the paper's results and are modeled explicitly:

* **TLB-hostile ranking**: the counting phase scatters over a key space far
  larger than TLB reach, giving IS "more than 10 times the number of TLB
  misses compared to the other applications" (Table III: 0.333% vs ≈0.01%)
  — and therefore the highest SM overhead (≈4%).
* **Phased, pair-staggered redistribution**: bucket boundaries are
  exchanged with slab neighbours (the domain pattern SM sees in Figure 4),
  but the exchange happens in bursts, a couple of threads at a time, which
  is what misleads HM's instant sampling into its Figure 5 artifact
  ("HM detected a large amount of communication between two threads and
  all the other ones").
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.mem.address import AddressSpace
from repro.util.rng import RngLike
from repro.workloads.access import boundary_pages, random_touch, sweep
from repro.workloads.base import AccessStream, Phase, Workload, concat_streams
from repro.workloads.npb.common import scaled_iters


class ISWorkload(Workload):
    """Bucket sort: TLB-hostile private ranking + staggered neighbour exchange."""

    name = "is"
    pattern_class = "domain"

    def __init__(self, num_threads: int = 8, scale: float = 1.0, seed: RngLike = None):
        super().__init__(num_threads, seed)
        self.iterations = scaled_iters(2, scale)
        self.random_rank_accesses = 260
        self.sequential_key_bytes = 128 * 1024
        self.space = AddressSpace()
        # Large private key arrays: the TLB-miss driver.
        self.keys = [
            self.space.allocate(f"is.keys{t}", 2 * 1024 * 1024)
            for t in range(num_threads)
        ]
        # Per-thread bucket arrays whose border buckets straddle neighbours.
        self.buckets = [
            self.space.allocate(f"is.buckets{t}", 64 * 1024)
            for t in range(num_threads)
        ]
        self.halo = 16 * 1024

    def _rank_phase(self, it: int) -> Phase:
        """Private counting: random scatter over the big key arrays."""
        streams = []
        for t in range(self.num_threads):
            rng = self.seeds.generator("rank", it, t)
            # Sequential key reads (the scan) with random histogram
            # updates scattered over the whole key space (the ranking).
            addrs = np.concatenate([
                sweep(self.keys[t], end=self.sequential_key_bytes),
                random_touch(self.keys[t], self.random_rank_accesses, rng),
                sweep(self.buckets[t], stride=256),
            ])
            streams.append(AccessStream.mixed(addrs, 0.45, rng))
        return Phase(f"is.rank{it}", streams)

    def _exchange_bursts(self, it: int) -> Iterator[Phase]:
        """Neighbour bucket exchange, two threads at a time."""
        n = self.num_threads
        for lo in range(0, n, 2):
            streams: List[AccessStream] = []
            for t in range(n):
                if not lo <= t < lo + 2:
                    streams.append(AccessStream.empty())
                    continue
                rng = self.seeds.generator("exch", it, t)
                parts = []
                if t > 0:
                    parts.append(AccessStream.reads(
                        boundary_pages(self.buckets[t - 1], self.halo, "high")
                    ))
                if t < n - 1:
                    parts.append(AccessStream.reads(
                        boundary_pages(self.buckets[t + 1], self.halo, "low")
                    ))
                own = np.concatenate([
                    boundary_pages(self.buckets[t], self.halo, "low"),
                    boundary_pages(self.buckets[t], self.halo, "high"),
                ])
                parts.append(AccessStream.mixed(own, 0.6, rng))
                streams.append(concat_streams(parts))
            yield Phase(f"is.exchange{it}.burst{lo}", streams)

    def generate_phases(self) -> Iterator[Phase]:
        for it in range(self.iterations):
            yield self._rank_phase(it)
            yield from self._exchange_bursts(it)
