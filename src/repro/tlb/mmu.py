"""Per-core memory-management unit.

The MMU is the core-side front end of virtual memory: every access consults
the TLB; on a miss the translation is fetched from the page table and the
entry filled.  Two management disciplines are modeled, matching Section IV
of the paper:

* ``SOFTWARE`` (SPARC/MIPS style): a miss traps to the OS.  The trap itself
  costs extra cycles, and the OS has the hook point where the SM detection
  mechanism runs — the ``miss_hooks`` fire *inside* the trap handler.
* ``HARDWARE`` (x86 style): the hardware walker fetches the entry; no trap.
  Miss hooks still fire (the simulator uses them for statistics), but the
  HM detection mechanism does not rely on them — it scans TLB contents
  periodically instead.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.tlb.pagetable import PageTable
from repro.tlb.tlb import TLB, TLBConfig, TLBStats

#: Signature of a TLB-miss hook: (core_id, vpn, now_cycles) -> extra
#: cycles to charge.  ``now_cycles`` is the core's simulated clock as of
#: the access that missed (quantum-start resolution — the simulator
#: refreshes :attr:`MMU.now_cycles` at every scheduling quantum), so
#: hooks can stamp trace events and feed time-windowed consumers without
#: reaching back into the simulator.
MissHook = Callable[[int, int, int], int]


class TLBManagement(enum.Enum):
    """Who refills the TLB on a miss."""

    SOFTWARE = "software"
    HARDWARE = "hardware"


class MMU:
    """TLB + walker for one core.

    Args:
        core_id: index of the owning core.
        page_table: shared :class:`PageTable`.
        tlb_config: geometry of this core's TLB.
        management: software- or hardware-managed refill.
        trap_latency: extra cycles for the OS trap on a software-managed
            miss (kernel entry/exit); zero for hardware-managed.
    """

    def __init__(
        self,
        core_id: int,
        page_table: PageTable,
        tlb_config: Optional[TLBConfig] = None,
        management: TLBManagement = TLBManagement.HARDWARE,
        trap_latency: int = 60,
        l2_tlb_config: Optional[TLBConfig] = None,
        l2_tlb_latency: int = 7,
    ):
        """See class docstring.  ``l2_tlb_config`` adds a second-level TLB
        (Nehalem-style: small L1 TLB backed by a larger unified L2 TLB); an
        L1 miss that hits the L2 TLB pays ``l2_tlb_latency`` instead of a
        walk, and *does not* trap or fire miss hooks — which is exactly why
        the paper sizes its mechanism on the L1 TLB ("the size of the L1
        TLB in the Intel Nehalem architecture")."""
        self.core_id = core_id
        self.page_table = page_table
        self.tlb = TLB(tlb_config, core_id=core_id)
        self.l2_tlb = (
            TLB(l2_tlb_config, core_id=core_id) if l2_tlb_config else None
        )
        self.l2_tlb_latency = l2_tlb_latency
        self.management = management
        self.trap_latency = trap_latency if management is TLBManagement.SOFTWARE else 0
        self.miss_hooks: List[MissHook] = []
        #: Simulated clock of the owning core, refreshed by the simulator
        #: at quantum granularity; passed to miss hooks as the access
        #: timestamp.  Stays 0 for MMUs driven outside a simulator.
        self.now_cycles: int = 0
        self._page_shift = self.tlb.config.page_size.bit_length() - 1

    def add_miss_hook(self, hook: MissHook) -> None:
        """Register a hook fired on every TLB miss (detection mechanisms)."""
        self.miss_hooks.append(hook)

    def translate(self, addr: int) -> int:
        """Translate a virtual address; returns cycles spent on translation.

        A TLB hit is free (the lookup overlaps the L1 access in real
        pipelines).  A miss pays the table walk, the management trap if
        software-managed, and whatever the miss hooks charge.
        """
        return self.translate_vpn(addr >> self._page_shift)

    def translate_vpn(self, vpn: int) -> int:
        """Like :meth:`translate`, for a pre-split virtual page number.

        The batched engine precomputes per-stream VPN sequences once per
        phase and feeds them here directly, skipping the per-access shift.
        """
        if vpn < 0:
            # A negative VPN would collide with the TLB's empty-way
            # sentinel and corrupt residency probes; no valid virtual
            # address produces one.
            raise ValueError(f"cannot translate negative VPN {vpn}")
        if self.tlb.lookup(vpn):
            return 0
        if self.l2_tlb is not None and self.l2_tlb.lookup(vpn):
            # Second-level hit: refill the L1 TLB, skip walk/trap/hooks.
            pfn = self.page_table.translate(vpn)
            self.tlb.fill(vpn, pfn if pfn is not None else 0)
            return self.l2_tlb_latency
        pfn, walk_cost = self.page_table.walk(vpn)
        cost = walk_cost + self.trap_latency
        for hook in self.miss_hooks:
            cost += hook(self.core_id, vpn, self.now_cycles)
        self.tlb.fill(vpn, pfn)
        if self.l2_tlb is not None:
            self.l2_tlb.fill(vpn, pfn)
        return cost

    def translate_batch(self, vpn: int, count: int) -> int:
        """Account ``count`` guaranteed L1-TLB-hit translations of ``vpn``.

        Batched-engine fast path for the tail of a same-page access run:
        the page was translated (and thus made resident) by the run's
        first access, so every repeat is a free hit — no walk, no trap, no
        miss hooks, no L2-TLB traffic.  Returns the cycles charged (0,
        matching ``count`` hit calls of :meth:`translate`).
        """
        self.tlb.lookup_batch(vpn, count)
        return 0

    @property
    def page_shift(self) -> int:
        """log2(page size) — the addr→VPN shift."""
        return self._page_shift

    def vpn_of(self, addr: int) -> int:
        """Virtual page number of ``addr``."""
        return addr >> self._page_shift

    def shootdown(self, vpn: int) -> bool:
        """Invalidate one TLB entry at every level (page-table change)."""
        hit = self.tlb.invalidate(vpn)
        if self.l2_tlb is not None:
            hit = self.l2_tlb.invalidate(vpn) or hit
        return hit

    @property
    def stats(self) -> TLBStats:
        """This core's :class:`~repro.tlb.tlb.TLBStats`."""
        return self.tlb.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MMU(core={self.core_id}, {self.management.value}, {self.tlb!r})"
