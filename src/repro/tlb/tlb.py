"""Set-associative TLB with LRU replacement.

This is the data structure the whole paper revolves around: a small,
per-core translation cache whose residency set approximates "pages this
core touched recently".  The default geometry — 64 entries, 4-way — is the
paper's (the UltraSPARC D-TLB and the Nehalem L1 D-TLB size).

Besides the usual lookup/fill interface the class exposes the two probe
operations the detection mechanisms need:

* ``probe(vpn)`` — non-destructive membership test (SM searches the *other*
  cores' TLBs for the page that just missed); Θ(ways) for a set-associative
  TLB, which is the paper's Θ(P) argument.
* ``set_entries(index)`` / ``resident_pages()`` — bulk content access used
  by the HM mechanism's periodic all-pairs scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.util.validation import check_power_of_two

#: Sentinel tag for an empty way.
_EMPTY = -1


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry.

    Attributes:
        entries: total entry count (power of two).
        ways: associativity; ``ways == entries`` gives a fully associative
            TLB (the paper analyzes both).
        page_size: bytes per page (used by callers to split addresses; the
            TLB itself only sees virtual page numbers).
    """

    entries: int = 64
    ways: int = 4
    page_size: int = 4096

    def __post_init__(self) -> None:
        check_power_of_two("entries", self.entries)
        check_power_of_two("ways", self.ways)
        check_power_of_two("page_size", self.page_size)
        if self.ways > self.entries:
            raise ValueError(
                f"ways ({self.ways}) cannot exceed entries ({self.entries})"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets (1 when fully associative)."""
        return self.entries // self.ways

    @property
    def fully_associative(self) -> bool:
        return self.num_sets == 1


@dataclass
class TLBStats:
    """Hit/miss/eviction counters for one TLB."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction in [0, 1]; 0.0 before any access."""
        total = self.accesses
        return self.misses / total if total else 0.0


class TLB:
    """One core's translation lookaside buffer.

    Tags are virtual page numbers; the stored translation (physical frame)
    is kept alongside so the model round-trips real translations, although
    the detection mechanisms only ever compare the virtual tags.
    """

    def __init__(self, config: Optional[TLBConfig] = None, core_id: int = 0):
        self.config = config or TLBConfig()
        self.core_id = core_id
        self.stats = TLBStats()
        n = self.config.num_sets
        w = self.config.ways
        # Parallel per-set arrays: plain lists beat numpy for sub-10-way scans.
        self._tags: List[List[int]] = [[_EMPTY] * w for _ in range(n)]
        self._pfns: List[List[int]] = [[_EMPTY] * w for _ in range(n)]
        self._stamp: List[List[int]] = [[0] * w for _ in range(n)]
        self._clock = 0
        self._set_mask = n - 1

    # -- core interface ----------------------------------------------------

    def set_index(self, vpn: int) -> int:
        """Set an entry for ``vpn`` would live in."""
        return vpn & self._set_mask

    def lookup(self, vpn: int) -> bool:
        """LRU-updating lookup.  Returns hit/miss and counts it."""
        self._clock += 1
        tags = self._tags[vpn & self._set_mask]
        for way, tag in enumerate(tags):
            if tag == vpn:
                self._stamp[vpn & self._set_mask][way] = self._clock
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def lookup_batch(self, vpn: int, count: int) -> None:
        """Account ``count`` guaranteed-hit lookups of a resident ``vpn``.

        Batched-engine entry point: within one scheduling quantum, every
        repeat access to the page just translated is a certain hit (the
        entry is MRU and nothing else touches this TLB until the quantum
        ends), so the per-lookup loop collapses to one counter/stamp
        update.  The final TLB state is bit-identical to ``count`` calls
        of :meth:`lookup`.

        Raises KeyError if ``vpn`` is not resident — the caller broke the
        guaranteed-hit contract.
        """
        idx = vpn & self._set_mask
        tags = self._tags[idx]
        try:
            way = tags.index(vpn)
        except ValueError:
            raise KeyError(
                f"lookup_batch: vpn {vpn:#x} not resident in core "
                f"{self.core_id}'s TLB"
            ) from None
        self._clock += count
        self._stamp[idx][way] = self._clock
        self.stats.hits += count

    def fill(self, vpn: int, pfn: int = 0) -> Optional[int]:
        """Insert a translation, evicting LRU if the set is full.

        Returns the evicted virtual page number, or None if a free way was
        used.  Filling a vpn that is already resident refreshes it in place.
        """
        self._clock += 1
        idx = vpn & self._set_mask
        tags = self._tags[idx]
        stamps = self._stamp[idx]
        free = -1
        for way, tag in enumerate(tags):
            if tag == vpn:
                self._pfns[idx][way] = pfn
                stamps[way] = self._clock
                return None
            if tag == _EMPTY and free < 0:
                free = way
        self.stats.fills += 1
        if free >= 0:
            way = free
            evicted = None
        else:
            # Manual LRU scan over <= `ways` stamps (hot path).
            way = 0
            best = stamps[0]
            for w in range(1, len(stamps)):
                if stamps[w] < best:
                    best = stamps[w]
                    way = w
            evicted = tags[way]
            self.stats.evictions += 1
        tags[way] = vpn
        self._pfns[idx][way] = pfn
        stamps[way] = self._clock
        return evicted

    def invalidate(self, vpn: int) -> bool:
        """Drop a translation (TLB shootdown).  Returns whether present."""
        idx = vpn & self._set_mask
        tags = self._tags[idx]
        for way, tag in enumerate(tags):
            if tag == vpn:
                tags[way] = _EMPTY
                self._pfns[idx][way] = _EMPTY
                self.stats.invalidations += 1
                return True
        return False

    def flush(self) -> None:
        """Drop all translations (context switch / full shootdown)."""
        for idx in range(len(self._tags)):
            w = self.config.ways
            self._tags[idx] = [_EMPTY] * w
            self._pfns[idx] = [_EMPTY] * w
            self._stamp[idx] = [0] * w

    # -- detection-mechanism interface --------------------------------------

    def probe(self, vpn: int) -> bool:
        """Non-destructive membership test (does not touch LRU or stats).

        This is the SM mechanism's primitive: on a miss in core A, probe the
        TLBs of all other cores for the missing page.

        Negative page numbers are never resident: empty ways are tagged
        with the ``_EMPTY`` sentinel (-1) inside ``_tags``, so an unguarded
        membership test would report a phantom hit for ``vpn == -1`` on
        any set with a free way.
        """
        return vpn >= 0 and vpn in self._tags[vpn & self._set_mask]

    def set_entries(self, index: int) -> List[int]:
        """Resident virtual page numbers of set ``index`` (no sentinels)."""
        return [t for t in self._tags[index] if t != _EMPTY]

    def resident_pages(self) -> List[int]:
        """All resident virtual page numbers (the TLB 'snapshot')."""
        out: List[int] = []
        for tags in self._tags:
            for t in tags:
                if t != _EMPTY:
                    out.append(t)
        return out

    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(1 for tags in self._tags for t in tags if t != _EMPTY)

    def __iter__(self) -> Iterator[int]:
        return iter(self.resident_pages())

    def __contains__(self, vpn: int) -> bool:
        return self.probe(vpn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (
            f"TLB(core={self.core_id}, {c.entries}e/{c.ways}w, "
            f"occupancy={self.occupancy()})"
        )
