"""Virtual-memory substrate: page table, set-associative TLBs, per-core MMUs.

The TLB model is the observable the paper's mechanism is built on: per-core
set-associative translation caches with LRU replacement whose *contents*
(resident page numbers) can be probed by the detection mechanisms, either on
a miss trap (software-managed) or by a periodic privileged scan
(hardware-managed).
"""

from repro.tlb.pagetable import PageTable, PageTableConfig
from repro.tlb.tlb import TLB, TLBConfig, TLBStats
from repro.tlb.mmu import MMU, TLBManagement

__all__ = [
    "PageTable",
    "PageTableConfig",
    "TLB",
    "TLBConfig",
    "TLBStats",
    "MMU",
    "TLBManagement",
]
