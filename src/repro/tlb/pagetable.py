"""Multi-level page table with allocate-on-touch.

The operating system side of virtual memory: a radix page table shared by
all cores of the simulated machine.  Frames are assigned on first touch
(sequentially — the actual frame numbers never matter to the paper's
mechanism, which compares *virtual* page residency across TLBs, but a real
translation target keeps the model honest and lets tests assert
translation coherence).

The walk cost model charges one memory-ish access per level, which is what
makes TLB misses expensive and the paper's "keep the mechanism off the
critical path" concern meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class PageTableConfig:
    """Geometry and cost model of the page table.

    Attributes:
        levels: number of radix levels (x86-64 uses 4; UltraSPARC TSBs are
            effectively 1-2).  Only affects walk cost.
        level_latency: cycles charged per level on a walk (a page-table
            access that misses all caches would be ~200 cycles; real walks
            mostly hit the cache hierarchy, hence the lower default).
        page_size: bytes per page.
    """

    levels: int = 4
    level_latency: int = 25
    page_size: int = 4096

    def __post_init__(self) -> None:
        check_positive("levels", self.levels)
        check_positive("level_latency", self.level_latency)
        check_power_of_two("page_size", self.page_size)

    @property
    def walk_latency(self) -> int:
        """Total cycles for a full table walk."""
        return self.levels * self.level_latency


class PageTable:
    """Shared translation table: virtual page number -> physical frame number."""

    def __init__(self, config: PageTableConfig | None = None):
        self.config = config or PageTableConfig()
        self._entries: Dict[int, int] = {}
        self._next_frame = 0
        self.walks = 0
        self.faults = 0

    def walk(self, vpn: int) -> tuple[int, int]:
        """Translate ``vpn``; returns ``(pfn, cost_cycles)``.

        First touch allocates a fresh frame (a minor page fault, charged an
        extra level of latency to stand in for the OS fault path).
        """
        self.walks += 1
        pfn = self._entries.get(vpn)
        if pfn is None:
            self.faults += 1
            pfn = self._next_frame
            self._next_frame += 1
            self._entries[vpn] = pfn
            return pfn, self.config.walk_latency + self.config.level_latency
        return pfn, self.config.walk_latency

    def translate(self, vpn: int) -> int | None:
        """Current translation for ``vpn`` without touching counters, or None."""
        return self._entries.get(vpn)

    def unmap(self, vpn: int) -> bool:
        """Remove a translation (OS page reclaim).  Returns whether it existed.

        Callers are responsible for shooting down TLB entries — exactly the
        invalidation-on-modify management the paper notes is the *only* TLB
        work a hardware-managed architecture leaves to the OS.
        """
        return self._entries.pop(vpn, None) is not None

    @property
    def mapped_pages(self) -> int:
        """Number of live translations."""
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
