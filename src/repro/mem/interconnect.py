"""Intra-chip vs. inter-chip interconnect traffic model.

Section III-A2 of the paper: the second objective of thread mapping is to
keep coherence traffic on the fast intra-chip paths and off the front-side
bus.  This module charges latencies and records per-path traffic so the
experiment harness can report how mapping shifts transactions between the
two classes of links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.validation import check_positive


@dataclass(frozen=True)
class InterconnectConfig:
    """Latency (cycles) and modeling knobs for the two link classes.

    Defaults approximate a Harpertown-era system: a cache-to-cache transfer
    inside one package is several times cheaper than one crossing the
    front-side bus, and both are cheaper than a DRAM fetch.
    """

    intra_chip_latency: int = 40
    inter_chip_latency: int = 150
    intra_chip_invalidate_latency: int = 12
    inter_chip_invalidate_latency: int = 40

    def __post_init__(self) -> None:
        check_positive("intra_chip_latency", self.intra_chip_latency)
        check_positive("inter_chip_latency", self.inter_chip_latency)
        check_positive("intra_chip_invalidate_latency", self.intra_chip_invalidate_latency)
        check_positive("inter_chip_invalidate_latency", self.inter_chip_invalidate_latency)


@dataclass
class InterconnectStats:
    """Transaction and byte counts per link class."""

    intra_transactions: int = 0
    inter_transactions: int = 0
    intra_bytes: int = 0
    inter_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def total_transactions(self) -> int:
        return self.intra_transactions + self.inter_transactions

    @property
    def inter_chip_fraction(self) -> float:
        """Fraction of transactions that crossed chips (mapping quality cue)."""
        total = self.total_transactions
        return self.inter_transactions / total if total else 0.0


class Interconnect:
    """Records traffic between chips and hands out transfer latencies."""

    def __init__(self, config: InterconnectConfig | None = None):
        self.config = config or InterconnectConfig()
        self.stats = InterconnectStats()

    def transfer(self, src_chip: int, dst_chip: int, nbytes: int, kind: str = "data") -> int:
        """Record a data transfer; returns the latency to charge."""
        same = src_chip == dst_chip
        if same:
            self.stats.intra_transactions += 1
            self.stats.intra_bytes += nbytes
        else:
            self.stats.inter_transactions += 1
            self.stats.inter_bytes += nbytes
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        return (
            self.config.intra_chip_latency
            if same
            else self.config.inter_chip_latency
        )

    def invalidate(self, src_chip: int, dst_chip: int, kind: str = "invalidate") -> int:
        """Record an invalidation message; returns the latency to charge."""
        same = src_chip == dst_chip
        if same:
            self.stats.intra_transactions += 1
        else:
            self.stats.inter_transactions += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        return (
            self.config.intra_chip_invalidate_latency
            if same
            else self.config.inter_chip_invalidate_latency
        )

    def reset(self) -> None:
        """Zero all counters (between experiment repetitions)."""
        self.stats = InterconnectStats()
