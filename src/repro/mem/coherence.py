"""MESI snooping coherence over the shared L2 caches.

The paper's performance metrics — cache-line invalidations, snoop
transactions, L2 misses — are exactly the events this bus produces:

* an **invalidation** is one remote L2 dropping a line because a writer
  needed ownership (SHARED→MODIFIED upgrade, or a read-for-ownership miss);
* a **snoop transaction** is a miss served by another cache instead of
  memory ("a core requests data that is not present in its cache and has to
  retrieve the data from another cache");
* an **L2 miss** is any request not satisfied by the local L2, regardless
  of who ends up supplying the data.

Latency charging is asymmetric on purpose: writers mostly hide invalidation
latency behind store buffers (they are charged only the broadcast cost),
while readers pay the full transfer cost of a cache-to-cache or memory
fill — which is how bad mappings become slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.mem.cache import Cache, MESIState
from repro.mem.interconnect import Interconnect

#: Hook fired when a line is invalidated in cache ``cache_id`` so the level
#: above (the private L1s) can drop their stale copies.
InvalidateHook = Callable[[int, int], None]


@dataclass
class CoherenceStats:
    """Aggregate protocol counters (the paper's Figures 7-9 quantities)."""

    invalidations: int = 0
    snoop_transactions: int = 0
    l2_misses: int = 0
    memory_fetches: int = 0
    upgrades: int = 0
    writebacks_to_memory: int = 0
    per_cache_misses: List[int] = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters, keeping the per-cache list length."""
        n = len(self.per_cache_misses)
        self.invalidations = 0
        self.snoop_transactions = 0
        self.l2_misses = 0
        self.memory_fetches = 0
        self.upgrades = 0
        self.writebacks_to_memory = 0
        self.per_cache_misses = [0] * n


class CoherenceBus:
    """Snooping bus connecting the L2 caches of one machine.

    Args:
        caches: the L2 caches, indexed by cache id.
        chip_of: chip (socket) index of each cache, parallel to ``caches``.
        interconnect: traffic model for transfer/invalidate costs.
        memory_latency: cycles for a fill from DRAM.
    """

    def __init__(
        self,
        caches: Sequence[Cache],
        chip_of: Sequence[int],
        interconnect: Optional[Interconnect] = None,
        memory_latency: int = 200,
        memory_model: Optional[object] = None,
    ):
        if len(caches) != len(chip_of):
            raise ValueError("caches and chip_of must be parallel sequences")
        self.caches = list(caches)
        self.chip_of = list(chip_of)
        self.interconnect = interconnect or Interconnect()
        self.memory_latency = memory_latency
        #: Fill-latency oracle; UMA by default, NUMA when a
        #: :class:`~repro.mem.numa.FirstTouchNUMA` is plugged in.
        self.memory_model = memory_model
        self.stats = CoherenceStats(per_cache_misses=[0] * len(self.caches))
        self.invalidate_hooks: List[InvalidateHook] = []
        self._line_size = self.caches[0].config.line_size if self.caches else 64

    def add_invalidate_hook(self, hook: InvalidateHook) -> None:
        """Register a callback for remote-cache invalidations (L1 shootdown)."""
        self.invalidate_hooks.append(hook)

    def _memory_fill(self, cache_id: int, line: int) -> int:
        """DRAM fill latency for ``cache_id`` reading ``line``."""
        if self.memory_model is None:
            return self.memory_latency
        return self.memory_model.memory_latency(self.chip_of[cache_id], line)

    # -- internal helpers -----------------------------------------------------

    def _holders(self, line: int, excluding: int) -> List[int]:
        """Cache ids (other than ``excluding``) holding ``line``."""
        return [
            cid
            for cid, cache in enumerate(self.caches)
            if cid != excluding and cache.probe(line) != MESIState.INVALID
        ]

    def _invalidate_in(self, cache_id: int, line: int) -> None:
        """Invalidate ``line`` in cache ``cache_id`` and notify hooks."""
        prior = self.caches[cache_id].invalidate(line)
        if prior == MESIState.MODIFIED:
            # Ownership moves with the request; memory sees a writeback.
            self.stats.writebacks_to_memory += 1
        self.stats.invalidations += 1
        for hook in self.invalidate_hooks:
            hook(cache_id, line)

    def _handle_victim(
        self, cache_id: int, victim: Optional[Tuple[int, MESIState]]
    ) -> None:
        """Account for a line evicted by an insert (and shoot down L1s)."""
        if victim is None:
            return
        vline, vstate = victim
        if vstate == MESIState.MODIFIED:
            self.stats.writebacks_to_memory += 1
        for hook in self.invalidate_hooks:
            hook(cache_id, vline)

    # -- protocol operations ----------------------------------------------------

    def read(self, cache_id: int, line: int) -> int:
        """Core-side read reaching L2 ``cache_id``; returns latency in cycles."""
        cache = self.caches[cache_id]
        state = cache.lookup(line)
        if state != MESIState.INVALID:
            return cache.config.latency
        # Local L2 miss.
        self.stats.l2_misses += 1
        self.stats.per_cache_misses[cache_id] += 1
        holders = self._holders(line, excluding=cache_id)
        if holders:
            # Served cache-to-cache: one snoop transaction.  Prefer an
            # on-chip supplier; a MODIFIED holder must supply regardless.
            my_chip = self.chip_of[cache_id]
            supplier = holders[0]
            for h in holders:
                if self.caches[h].probe(line) == MESIState.MODIFIED:
                    supplier = h
                    break
                if self.chip_of[h] == my_chip:
                    supplier = h
            self.stats.snoop_transactions += 1
            sup_state = self.caches[supplier].probe(line)
            if sup_state == MESIState.MODIFIED:
                self.stats.writebacks_to_memory += 1
            # All holders (incl. supplier) downgrade to SHARED.
            for h in holders:
                self.caches[h].set_state(line, MESIState.SHARED)
            latency = cache.config.latency + self.interconnect.transfer(
                self.chip_of[supplier], my_chip, self._line_size, kind="snoop"
            )
            self._handle_victim(cache_id, cache.insert(line, MESIState.SHARED))
            return latency
        # Served from memory.
        self.stats.memory_fetches += 1
        self._handle_victim(cache_id, cache.insert(line, MESIState.EXCLUSIVE))
        return cache.config.latency + self._memory_fill(cache_id, line)

    def write(self, cache_id: int, line: int) -> int:
        """Core-side write reaching L2 ``cache_id``; returns latency in cycles.

        The L1s above are write-through, so every store arrives here; hits
        in MODIFIED/EXCLUSIVE are the silent fast path.
        """
        cache = self.caches[cache_id]
        state = cache.lookup(line)
        my_chip = self.chip_of[cache_id]
        if state == MESIState.MODIFIED:
            return 0
        if state == MESIState.EXCLUSIVE:
            cache.set_state(line, MESIState.MODIFIED)
            return 0
        if state == MESIState.SHARED:
            # Upgrade: broadcast invalidations to every other holder.
            self.stats.upgrades += 1
            latency = 0
            for h in self._holders(line, excluding=cache_id):
                latency = max(
                    latency,
                    self.interconnect.invalidate(my_chip, self.chip_of[h]),
                )
                self._invalidate_in(h, line)
            cache.set_state(line, MESIState.MODIFIED)
            return latency
        # Write miss: read-for-ownership.
        self.stats.l2_misses += 1
        self.stats.per_cache_misses[cache_id] += 1
        holders = self._holders(line, excluding=cache_id)
        if holders:
            self.stats.snoop_transactions += 1
            supplier = holders[0]
            for h in holders:
                if self.caches[h].probe(line) == MESIState.MODIFIED:
                    supplier = h
                    break
                if self.chip_of[h] == my_chip:
                    supplier = h
            latency = self.interconnect.transfer(
                self.chip_of[supplier], my_chip, self._line_size, kind="rfo"
            )
            for h in holders:
                self._invalidate_in(h, line)
        else:
            self.stats.memory_fetches += 1
            latency = self._memory_fill(cache_id, line)
        self._handle_victim(cache_id, cache.insert(line, MESIState.MODIFIED))
        return latency

    # -- invariants (used by tests and debug assertions) ------------------------

    def holders_of(self, line: int) -> List[int]:
        """All cache ids currently holding ``line`` (any valid state)."""
        return [
            cid
            for cid, cache in enumerate(self.caches)
            if cache.probe(line) != MESIState.INVALID
        ]

    def check_invariants(self, line: int) -> None:
        """Assert MESI single-writer/multiple-reader invariants for ``line``."""
        states = [
            self.caches[cid].probe(line) for cid in range(len(self.caches))
        ]
        valid = [s for s in states if s != MESIState.INVALID]
        n_mod = sum(1 for s in valid if s == MESIState.MODIFIED)
        n_excl = sum(1 for s in valid if s == MESIState.EXCLUSIVE)
        if n_mod + n_excl > 1:
            raise AssertionError(
                f"line {line:#x}: multiple exclusive owners ({states})"
            )
        if (n_mod or n_excl) and len(valid) > 1:
            raise AssertionError(
                f"line {line:#x}: M/E coexists with other copies ({states})"
            )

    def reset_stats(self) -> None:
        """Zero protocol and interconnect counters."""
        self.stats.reset()
        self.interconnect.reset()
