"""Two-level cache hierarchy: private write-through L1s over shared L2s.

Mirrors the paper's Table II / Figure 3 machine: each core has a private L1
(write-through, so the L2 always has current data), pairs of cores share a
write-back L2, and the L2s keep each other coherent over a MESI snooping
bus (:class:`~repro.mem.coherence.CoherenceBus`).

The hierarchy enforces *inclusion*: when an L2 line is invalidated or
evicted, the copies in the L1s above it are shot down (the bus's
invalidate hook).  A write by one core also invalidates the line in its
L1 *sibling* (the core sharing the L2) — the intra-pair coherence that
makes same-L2 sharing cheap but not free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.mem.cache import Cache, CacheConfig, MESIState
from repro.mem.coherence import CoherenceBus, CoherenceStats
from repro.mem.interconnect import Interconnect, InterconnectConfig


@dataclass(frozen=True)
class AccessResult:
    """Verbose outcome of a single access (testing/debugging path)."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    served_by: str  # "l1", "l2", "snoop", or "memory"


class MemoryHierarchy:
    """All caches of one machine plus the coherence fabric.

    Args:
        num_cores: number of cores (each gets a private L1).
        core_to_l2: L2 cache id for each core (e.g. ``[0,0,1,1,2,2,3,3]``
            for the Harpertown pairing).
        chip_of_l2: chip/socket id of each L2.
        l1_config / l2_config: cache geometries (paper Table II defaults).
        interconnect: shared traffic model (constructed if omitted).
        memory_latency: DRAM fill cost in cycles.
    """

    def __init__(
        self,
        num_cores: int,
        core_to_l2: Sequence[int],
        chip_of_l2: Sequence[int],
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
        interconnect: Optional[Interconnect] = None,
        memory_latency: int = 200,
        memory_model: Optional[object] = None,
    ):
        if len(core_to_l2) != num_cores:
            raise ValueError("core_to_l2 must have one entry per core")
        num_l2 = max(core_to_l2) + 1
        if sorted(set(core_to_l2)) != list(range(num_l2)):
            raise ValueError("core_to_l2 must use contiguous L2 ids from 0")
        if len(chip_of_l2) != num_l2:
            raise ValueError(f"chip_of_l2 must have {num_l2} entries")

        self.num_cores = num_cores
        self.core_to_l2 = list(core_to_l2)
        self.l1_config = l1_config or CacheConfig(
            size=32 * 1024, ways=4, line_size=64, latency=2,
            write_back=False, name="L1",
        )
        self.l2_config = l2_config or CacheConfig(
            size=6 * 1024 * 1024, ways=8, line_size=64, latency=8,
            write_back=True, name="L2",
        )
        if self.l1_config.line_size != self.l2_config.line_size:
            raise ValueError("L1 and L2 must use the same line size")
        self._line_shift = self.l1_config.line_size.bit_length() - 1

        self.l1s: List[Cache] = [
            Cache(self.l1_config, owner_id=c) for c in range(num_cores)
        ]
        self.l2s: List[Cache] = [
            Cache(self.l2_config, owner_id=i) for i in range(num_l2)
        ]
        self.bus = CoherenceBus(
            self.l2s,
            chip_of=chip_of_l2,
            interconnect=interconnect or Interconnect(InterconnectConfig()),
            memory_latency=memory_latency,
            memory_model=memory_model,
        )
        self.bus.add_invalidate_hook(self._on_l2_invalidate)
        # Cores above each L2, for sibling/inclusion shootdowns.
        self._l2_cores: List[List[int]] = [[] for _ in range(num_l2)]
        for core, l2 in enumerate(self.core_to_l2):
            self._l2_cores[l2].append(core)
        self.l1_sibling_invalidations = 0
        self._l1_lat = self.l1_config.latency  # hot-path hoist
        # Per-core hoisted-structure tuples for access_batch (lazy).
        self._batch_ctx: dict = {}

    # -- hooks ----------------------------------------------------------------

    def _on_l2_invalidate(self, l2_id: int, line: int) -> None:
        """Inclusion: drop the line from every L1 above the invalidated L2."""
        for core in self._l2_cores[l2_id]:
            self.l1s[core].invalidate(line)

    # -- access paths ------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Cache-line number of a (physical or virtual) byte address."""
        return addr >> self._line_shift

    @property
    def line_shift(self) -> int:
        """log2(line size) — the addr→line shift."""
        return self._line_shift

    def access(self, core: int, addr: int, is_write: bool) -> int:
        """Perform one access; returns the latency in cycles.

        The hot path of the whole simulator: a read that hits L1 does one
        dict probe and returns.
        """
        line = addr >> self._line_shift
        l1 = self.l1s[core]
        if is_write:
            # Write-through, no-write-allocate L1: the L1 copy (if any) is
            # updated in place; the write always reaches the L2.
            l1.lookup(line)  # LRU touch + hit/miss accounting
            l2_id = self.core_to_l2[core]
            latency = self._l1_lat + self.bus.write(l2_id, line)
            # Intra-pair coherence: the sibling's L1 copy is now stale.
            for sibling in self._l2_cores[l2_id]:
                if sibling != core:
                    if self.l1s[sibling].invalidate(line) != MESIState.INVALID:
                        self.l1_sibling_invalidations += 1
            return latency
        # Read path (any valid MESI state is truthy).
        if l1.lookup(line):
            return self._l1_lat
        latency = self._l1_lat + self.bus.read(self.core_to_l2[core], line)
        l1.insert(line, MESIState.SHARED)
        return latency

    def access_batch(
        self,
        core: int,
        lines: Sequence[int],
        writes: Sequence[bool],
        start: int,
        end: int,
    ) -> int:
        """Perform accesses ``start..end`` of one core's stream in bulk.

        Batched-engine entry point: one fused loop with the *entire* MESI
        protocol inlined — L1/L2 hits, silent write upgrades, memory
        fills, and the snoop paths (cache-to-cache reads, upgrade
        broadcasts, RFOs), the latter sharing a single holder scan where
        the scalar path probes twice.  Clocks and counters are mirrored
        in locals and flushed once at the end; every stamp update is a
        pop+reinsert so the :class:`~repro.mem.cache.Cache` invariant
        (dict order == LRU order) is preserved, and the final cache state
        and every statistic are bit-identical to ``end - start`` calls of
        :meth:`access`.

        Only safe when no other core touches the hierarchy in between —
        i.e. within one scheduling quantum of the simulator.  Returns the
        summed latency in cycles.
        """
        bus = self.bus
        # Per-core hoist context, built once: every object in it is fixed
        # at construction time (caches, hook list, interconnect methods,
        # chip map).  Mutable things that may be swapped per run — the
        # memory model — are read per call below.
        ctx = self._batch_ctx.get(core)
        if ctx is None:
            l2_id = self.core_to_l2[core]
            l1 = self.l1s[core]
            l2 = self.l2s[l2_id]
            sib_l1s = [
                self.l1s[s] for s in self._l2_cores[l2_id] if s != core
            ]
            ctx = (
                l1,
                l2_id,
                l2,
                bus.stats,
                bus.invalidate_hooks,
                bus.interconnect.transfer,
                bus.interconnect.invalidate,
                bus._line_size,
                self._l1_lat,
                self.l2_config.latency,
                sib_l1s,
                # One sibling is the common topology (paired cores):
                # skip the loop then.
                sib_l1s[0] if len(sib_l1s) == 1 else None,
                bus.chip_of,
                bus.chip_of[l2_id],
                l1._sets,
                l1._num_sets,
                l1._ways,
                l2._sets,
                l2._num_sets,
                l2._ways,
                l2.stats,
                # Other L2s' tag stores, for the single holder scan.
                [
                    (cid, c, c._sets, c._num_sets)
                    for cid, c in enumerate(bus.caches)
                    if cid != l2_id
                ],
            )
            self._batch_ctx[core] = ctx
        (
            l1,
            l2_id,
            l2,
            bus_stats,
            inv_hooks,
            ic_transfer,
            ic_invalidate,
            line_size,
            l1_lat,
            l2_lat,
            sib_l1s,
            sib0,
            chip_of,
            my_chip,
            l1_sets,
            l1_num_sets,
            l1_ways,
            l2_sets,
            l2_num_sets,
            l2_ways,
            l2_stats,
            others,
        ) = ctx
        # DRAM fill cost: constant under UMA, an oracle call under NUMA.
        memory_model = bus.memory_model
        uma_fill = bus.memory_latency if memory_model is None else None

        # Local counter mirrors, flushed once after the loop (no mid-loop
        # fallbacks remain).  L1 misses are derived: every access does
        # exactly one L1 lookup, so misses = n - hits.
        l1_clock = l1._clock
        l2_clock = l2._clock
        l1_hits_w = 0          # write-path L1 touches that hit
        l1_evictions = 0
        wr_ct = 0              # writes seen (reads are derived: n - wr_ct)
        rd_miss_ct = 0         # reads that missed the local L2
        l2_miss_ct = 0         # mirrors l2.stats.misses == bus l2_misses
        l2_evict_ct = 0
        l2_wb_ct = 0           # MODIFIED victims (writebacks)
        wb_mem = 0             # bus writebacks_to_memory
        snoop_ct = 0
        memfetch_ct = 0
        upgrade_ct = 0
        inval_ct = 0
        sib_inval = 0
        n_l1_read_hits = 0     # latency l1_lat each
        n_write_fast = 0       # latency l1_lat each (M/E silent hits)
        total = 0

        seg = lines[start:end]
        if True not in writes[start:end]:
            # Write-free quantum (the common case in the read-heavy
            # kernels): run the read path without the per-access write
            # branch or the zip over the writes list.
            for line in seg:
                s1 = l1_sets[line % l1_num_sets]
                e1 = s1.pop(line, None)
                if e1 is not None:
                    l1_clock += 1
                    e1[1] = l1_clock
                    s1[line] = e1
                    n_l1_read_hits += 1
                    continue
                s2 = l2_sets[line % l2_num_sets]
                e2 = s2.pop(line, None)
                if e2 is not None:  # any valid MESI state serves a read
                    l2_clock += 1
                    e2[1] = l2_clock
                    s2[line] = e2
                else:
                    # Local L2 miss: snoop or memory fill.
                    l2_miss_ct += 1
                    rd_miss_ct += 1
                    holders = None
                    for cid, oc, osets, onum in others:
                        e = osets[line % onum].get(line)
                        if e is not None:
                            if holders is None:
                                holders = [(cid, e)]
                            else:
                                holders.append((cid, e))
                    if holders is not None:
                        snoop_ct += 1
                        supplier, sup_state = holders[0][0], holders[0][1][0]
                        for h, e in holders:
                            if e[0] == 3:
                                supplier, sup_state = h, 3
                                break
                            if chip_of[h] == my_chip:
                                supplier, sup_state = h, e[0]
                        if sup_state == 3:
                            wb_mem += 1
                        for h, e in holders:
                            e[0] = 1  # all holders downgrade to SHARED
                        total += l1_lat + l2_lat + ic_transfer(
                            chip_of[supplier], my_chip, line_size, kind="snoop"
                        )
                        fill_state = 1  # MESIState.SHARED
                    else:
                        memfetch_ct += 1
                        total += l1_lat + l2_lat + (
                            uma_fill
                            if uma_fill is not None
                            else memory_model.memory_latency(my_chip, line)
                        )
                        fill_state = 2  # MESIState.EXCLUSIVE
                    l2_clock += 2  # the lookup's and the insert's ticks
                    if len(s2) >= l2_ways:
                        vline = next(iter(s2))
                        ve = s2.pop(vline)
                        l2_evict_ct += 1
                        if ve[0] == 3:
                            l2_wb_ct += 1
                            wb_mem += 1
                        for hook in inv_hooks:
                            hook(l2_id, vline)
                        ve[0] = fill_state
                        ve[1] = l2_clock
                        s2[line] = ve
                    else:
                        s2[line] = [fill_state, l2_clock]
                # L1 refill.  L1 entries are always SHARED (write-through,
                # no-write-allocate), so a reused victim keeps its state.
                l1_clock += 2  # the touch's and the refill's clock ticks
                if len(s1) >= l1_ways:
                    ve1 = s1.pop(next(iter(s1)))
                    l1_evictions += 1
                    ve1[1] = l1_clock
                    s1[line] = ve1
                else:
                    s1[line] = [1, l1_clock]  # MESIState.SHARED
            n = end - start
            n_l2_read_hits = n - n_l1_read_hits - rd_miss_ct
            l1._clock = l1_clock
            l2._clock = l2_clock
            l1_stats = l1.stats
            l1_stats.hits += n_l1_read_hits
            l1_stats.misses += n - n_l1_read_hits
            l1_stats.evictions += l1_evictions
            l2_stats.hits += n_l2_read_hits
            l2_stats.misses += l2_miss_ct
            l2_stats.evictions += l2_evict_ct
            l2_stats.writebacks += l2_wb_ct
            bus_stats.l2_misses += l2_miss_ct
            bus_stats.per_cache_misses[l2_id] += l2_miss_ct
            bus_stats.snoop_transactions += snoop_ct
            bus_stats.memory_fetches += memfetch_ct
            bus_stats.invalidations += inval_ct
            bus_stats.writebacks_to_memory += wb_mem
            return (
                total
                + n_l1_read_hits * l1_lat
                + n_l2_read_hits * (l1_lat + l2_lat)
            )

        for line, w in zip(seg, writes[start:end]):
            if w:
                # Write-through L1: LRU touch + accounting, store goes down.
                wr_ct += 1
                l1_clock += 1
                s1 = l1_sets[line % l1_num_sets]
                e1 = s1.pop(line, None)
                if e1 is not None:
                    e1[1] = l1_clock
                    s1[line] = e1
                    l1_hits_w += 1
                s2 = l2_sets[line % l2_num_sets]
                e2 = s2.pop(line, None)
                if e2 is not None:
                    l2_clock += 1
                    e2[1] = l2_clock
                    s2[line] = e2
                    state = e2[0]
                    if state >= 2:  # EXCLUSIVE or MODIFIED: silent hit.
                        if state == 2:
                            e2[0] = 3
                        n_write_fast += 1
                    else:
                        # SHARED: upgrade, invalidate every other holder.
                        upgrade_ct += 1
                        lat = 0
                        for cid, oc, osets, onum in others:
                            oset = osets[line % onum]
                            prior = oset.pop(line, None)
                            if prior is not None:
                                oc.stats.invalidations_received += 1
                                if prior[0] == 3:
                                    wb_mem += 1
                                inval_ct += 1
                                cost = ic_invalidate(my_chip, chip_of[cid])
                                if cost > lat:
                                    lat = cost
                                for hook in inv_hooks:
                                    hook(cid, line)
                        e2[0] = 3
                        total += l1_lat + lat
                else:
                    # Write miss: read-for-ownership.
                    l2_miss_ct += 1
                    holders = None
                    for cid, oc, osets, onum in others:
                        e = osets[line % onum].get(line)
                        if e is not None:
                            if holders is None:
                                holders = [(cid, oc, osets[line % onum], e)]
                            else:
                                holders.append((cid, oc, osets[line % onum], e))
                    if holders is not None:
                        snoop_ct += 1
                        supplier = holders[0][0]
                        for h, _, _, e in holders:
                            if e[0] == 3:
                                supplier = h
                                break
                            if chip_of[h] == my_chip:
                                supplier = h
                        total += l1_lat + ic_transfer(
                            chip_of[supplier], my_chip, line_size, kind="rfo"
                        )
                        for h, oc, oset, e in holders:
                            del oset[line]
                            oc.stats.invalidations_received += 1
                            if e[0] == 3:
                                wb_mem += 1
                            inval_ct += 1
                            for hook in inv_hooks:
                                hook(h, line)
                    else:
                        memfetch_ct += 1
                        total += l1_lat + (
                            uma_fill
                            if uma_fill is not None
                            else memory_model.memory_latency(my_chip, line)
                        )
                    l2_clock += 2  # the lookup's and the insert's clock ticks
                    if len(s2) >= l2_ways:
                        vline = next(iter(s2))
                        ve = s2.pop(vline)
                        l2_evict_ct += 1
                        if ve[0] == 3:
                            l2_wb_ct += 1
                            wb_mem += 1
                        for hook in inv_hooks:
                            hook(l2_id, vline)
                        ve[0] = 3  # MESIState.MODIFIED
                        ve[1] = l2_clock
                        s2[line] = ve
                    else:
                        s2[line] = [3, l2_clock]  # MESIState.MODIFIED
                # Sibling L1 shootdown (intra-pair coherence).
                if sib0 is not None:
                    if sib0._sets[line % sib0._num_sets].pop(line, None) is not None:
                        sib0.stats.invalidations_received += 1
                        sib_inval += 1
                else:
                    for sl1 in sib_l1s:
                        if sl1._sets[line % sl1._num_sets].pop(line, None) is not None:
                            sl1.stats.invalidations_received += 1
                            sib_inval += 1
                continue
            # Read path.  (Clock ticks are fused on the miss branches: the
            # lookup tick writes no stamp when it misses, so the miss path
            # advances the clock by 2 in one step before the fill's stamp.)
            s1 = l1_sets[line % l1_num_sets]
            e1 = s1.pop(line, None)
            if e1 is not None:
                l1_clock += 1
                e1[1] = l1_clock
                s1[line] = e1
                n_l1_read_hits += 1
                continue
            s2 = l2_sets[line % l2_num_sets]
            e2 = s2.pop(line, None)
            if e2 is not None:  # any valid MESI state serves a read
                l2_clock += 1
                e2[1] = l2_clock
                s2[line] = e2
            else:
                # Local L2 miss: snoop or memory fill.
                l2_miss_ct += 1
                rd_miss_ct += 1
                holders = None
                for cid, oc, osets, onum in others:
                    e = osets[line % onum].get(line)
                    if e is not None:
                        if holders is None:
                            holders = [(cid, e)]
                        else:
                            holders.append((cid, e))
                if holders is not None:
                    # Served cache-to-cache: one snoop transaction.  Prefer
                    # an on-chip supplier; a MODIFIED holder must supply.
                    snoop_ct += 1
                    supplier, sup_state = holders[0][0], holders[0][1][0]
                    for h, e in holders:
                        if e[0] == 3:
                            supplier, sup_state = h, 3
                            break
                        if chip_of[h] == my_chip:
                            supplier, sup_state = h, e[0]
                    if sup_state == 3:
                        wb_mem += 1
                    for h, e in holders:
                        e[0] = 1  # all holders downgrade to SHARED
                    total += l1_lat + l2_lat + ic_transfer(
                        chip_of[supplier], my_chip, line_size, kind="snoop"
                    )
                    fill_state = 1  # MESIState.SHARED
                else:
                    memfetch_ct += 1
                    total += l1_lat + l2_lat + (
                        uma_fill
                        if uma_fill is not None
                        else memory_model.memory_latency(my_chip, line)
                    )
                    fill_state = 2  # MESIState.EXCLUSIVE
                l2_clock += 2  # the lookup's and the insert's clock ticks
                if len(s2) >= l2_ways:
                    vline = next(iter(s2))
                    ve = s2.pop(vline)
                    l2_evict_ct += 1
                    if ve[0] == 3:
                        l2_wb_ct += 1
                        wb_mem += 1
                    for hook in inv_hooks:
                        hook(l2_id, vline)
                    ve[0] = fill_state
                    ve[1] = l2_clock
                    s2[line] = ve
                else:
                    s2[line] = [fill_state, l2_clock]
            # L1 refill.  L1 entries are always SHARED (write-through,
            # no-write-allocate), so a reused victim keeps its state.
            l1_clock += 2  # the touch's and the refill's clock ticks
            if len(s1) >= l1_ways:
                ve1 = s1.pop(next(iter(s1)))
                l1_evictions += 1
                ve1[1] = l1_clock
                s1[line] = ve1
            else:
                s1[line] = [1, l1_clock]  # MESIState.SHARED

        # Flush the mirrors.  L2 read hits are derived: every read that
        # missed the L1 did one L2 lookup, hitting unless counted missed.
        n = end - start
        n_l2_read_hits = (n - wr_ct) - n_l1_read_hits - rd_miss_ct
        l1._clock = l1_clock
        l2._clock = l2_clock
        l1_stats = l1.stats
        l1_hits = n_l1_read_hits + l1_hits_w
        l1_stats.hits += l1_hits
        l1_stats.misses += n - l1_hits
        l1_stats.evictions += l1_evictions
        l2_stats.hits += n_l2_read_hits + n_write_fast + upgrade_ct
        l2_stats.misses += l2_miss_ct
        l2_stats.evictions += l2_evict_ct
        l2_stats.writebacks += l2_wb_ct
        bus_stats.l2_misses += l2_miss_ct
        bus_stats.per_cache_misses[l2_id] += l2_miss_ct
        bus_stats.snoop_transactions += snoop_ct
        bus_stats.memory_fetches += memfetch_ct
        bus_stats.upgrades += upgrade_ct
        bus_stats.invalidations += inval_ct
        bus_stats.writebacks_to_memory += wb_mem
        self.l1_sibling_invalidations += sib_inval
        return (
            total
            + (n_l1_read_hits + n_write_fast) * l1_lat
            + n_l2_read_hits * (l1_lat + l2_lat)
        )

    def access_verbose(self, core: int, addr: int, is_write: bool) -> AccessResult:
        """Like :meth:`access` but reports where the data came from (tests)."""
        line = addr >> self._line_shift
        l1_hit = self.l1s[core].probe(line) != MESIState.INVALID
        l2_id = self.core_to_l2[core]
        l2_hit = self.l2s[l2_id].probe(line) != MESIState.INVALID
        others = [
            cid for cid in range(len(self.l2s))
            if cid != l2_id and self.l2s[cid].probe(line) != MESIState.INVALID
        ]
        latency = self.access(core, addr, is_write)
        if not is_write and l1_hit:
            served = "l1"
        elif l2_hit:
            served = "l2"
        elif others:
            served = "snoop"
        else:
            served = "memory"
        return AccessResult(latency=latency, l1_hit=l1_hit, l2_hit=l2_hit, served_by=served)

    # -- statistics ----------------------------------------------------------------

    @property
    def stats(self) -> CoherenceStats:
        """Protocol counters (invalidations, snoops, L2 misses...)."""
        return self.bus.stats

    @property
    def interconnect(self) -> Interconnect:
        return self.bus.interconnect

    def l1_miss_rate(self) -> float:
        """Aggregate L1 miss rate across cores."""
        hits = sum(c.stats.hits for c in self.l1s)
        misses = sum(c.stats.misses for c in self.l1s)
        total = hits + misses
        return misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero all counters; cache *contents* are preserved."""
        for c in self.l1s + self.l2s:
            c.stats.__init__()
        self.bus.reset_stats()
        self.l1_sibling_invalidations = 0

    def flush_all(self) -> None:
        """Empty every cache (between independent runs)."""
        for c in self.l1s + self.l2s:
            c.flush()
