"""Two-level cache hierarchy: private write-through L1s over shared L2s.

Mirrors the paper's Table II / Figure 3 machine: each core has a private L1
(write-through, so the L2 always has current data), pairs of cores share a
write-back L2, and the L2s keep each other coherent over a MESI snooping
bus (:class:`~repro.mem.coherence.CoherenceBus`).

The hierarchy enforces *inclusion*: when an L2 line is invalidated or
evicted, the copies in the L1s above it are shot down (the bus's
invalidate hook).  A write by one core also invalidates the line in its
L1 *sibling* (the core sharing the L2) — the intra-pair coherence that
makes same-L2 sharing cheap but not free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.mem.cache import Cache, CacheConfig, MESIState
from repro.mem.coherence import CoherenceBus, CoherenceStats
from repro.mem.interconnect import Interconnect, InterconnectConfig


@dataclass(frozen=True)
class AccessResult:
    """Verbose outcome of a single access (testing/debugging path)."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    served_by: str  # "l1", "l2", "snoop", or "memory"


class MemoryHierarchy:
    """All caches of one machine plus the coherence fabric.

    Args:
        num_cores: number of cores (each gets a private L1).
        core_to_l2: L2 cache id for each core (e.g. ``[0,0,1,1,2,2,3,3]``
            for the Harpertown pairing).
        chip_of_l2: chip/socket id of each L2.
        l1_config / l2_config: cache geometries (paper Table II defaults).
        interconnect: shared traffic model (constructed if omitted).
        memory_latency: DRAM fill cost in cycles.
    """

    def __init__(
        self,
        num_cores: int,
        core_to_l2: Sequence[int],
        chip_of_l2: Sequence[int],
        l1_config: Optional[CacheConfig] = None,
        l2_config: Optional[CacheConfig] = None,
        interconnect: Optional[Interconnect] = None,
        memory_latency: int = 200,
        memory_model: Optional[object] = None,
    ):
        if len(core_to_l2) != num_cores:
            raise ValueError("core_to_l2 must have one entry per core")
        num_l2 = max(core_to_l2) + 1
        if sorted(set(core_to_l2)) != list(range(num_l2)):
            raise ValueError("core_to_l2 must use contiguous L2 ids from 0")
        if len(chip_of_l2) != num_l2:
            raise ValueError(f"chip_of_l2 must have {num_l2} entries")

        self.num_cores = num_cores
        self.core_to_l2 = list(core_to_l2)
        self.l1_config = l1_config or CacheConfig(
            size=32 * 1024, ways=4, line_size=64, latency=2,
            write_back=False, name="L1",
        )
        self.l2_config = l2_config or CacheConfig(
            size=6 * 1024 * 1024, ways=8, line_size=64, latency=8,
            write_back=True, name="L2",
        )
        if self.l1_config.line_size != self.l2_config.line_size:
            raise ValueError("L1 and L2 must use the same line size")
        self._line_shift = self.l1_config.line_size.bit_length() - 1

        self.l1s: List[Cache] = [
            Cache(self.l1_config, owner_id=c) for c in range(num_cores)
        ]
        self.l2s: List[Cache] = [
            Cache(self.l2_config, owner_id=i) for i in range(num_l2)
        ]
        self.bus = CoherenceBus(
            self.l2s,
            chip_of=chip_of_l2,
            interconnect=interconnect or Interconnect(InterconnectConfig()),
            memory_latency=memory_latency,
            memory_model=memory_model,
        )
        self.bus.add_invalidate_hook(self._on_l2_invalidate)
        # Cores above each L2, for sibling/inclusion shootdowns.
        self._l2_cores: List[List[int]] = [[] for _ in range(num_l2)]
        for core, l2 in enumerate(self.core_to_l2):
            self._l2_cores[l2].append(core)
        self.l1_sibling_invalidations = 0
        self._l1_lat = self.l1_config.latency  # hot-path hoist

    # -- hooks ----------------------------------------------------------------

    def _on_l2_invalidate(self, l2_id: int, line: int) -> None:
        """Inclusion: drop the line from every L1 above the invalidated L2."""
        for core in self._l2_cores[l2_id]:
            self.l1s[core].invalidate(line)

    # -- access paths ------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Cache-line number of a (physical or virtual) byte address."""
        return addr >> self._line_shift

    def access(self, core: int, addr: int, is_write: bool) -> int:
        """Perform one access; returns the latency in cycles.

        The hot path of the whole simulator: a read that hits L1 does one
        dict probe and returns.
        """
        line = addr >> self._line_shift
        l1 = self.l1s[core]
        if is_write:
            # Write-through, no-write-allocate L1: the L1 copy (if any) is
            # updated in place; the write always reaches the L2.
            l1.lookup(line)  # LRU touch + hit/miss accounting
            l2_id = self.core_to_l2[core]
            latency = self._l1_lat + self.bus.write(l2_id, line)
            # Intra-pair coherence: the sibling's L1 copy is now stale.
            for sibling in self._l2_cores[l2_id]:
                if sibling != core:
                    if self.l1s[sibling].invalidate(line) != MESIState.INVALID:
                        self.l1_sibling_invalidations += 1
            return latency
        # Read path (any valid MESI state is truthy).
        if l1.lookup(line):
            return self._l1_lat
        latency = self._l1_lat + self.bus.read(self.core_to_l2[core], line)
        l1.insert(line, MESIState.SHARED)
        return latency

    def access_verbose(self, core: int, addr: int, is_write: bool) -> AccessResult:
        """Like :meth:`access` but reports where the data came from (tests)."""
        line = addr >> self._line_shift
        l1_hit = self.l1s[core].probe(line) != MESIState.INVALID
        l2_id = self.core_to_l2[core]
        l2_hit = self.l2s[l2_id].probe(line) != MESIState.INVALID
        others = [
            cid for cid in range(len(self.l2s))
            if cid != l2_id and self.l2s[cid].probe(line) != MESIState.INVALID
        ]
        latency = self.access(core, addr, is_write)
        if not is_write and l1_hit:
            served = "l1"
        elif l2_hit:
            served = "l2"
        elif others:
            served = "snoop"
        else:
            served = "memory"
        return AccessResult(latency=latency, l1_hit=l1_hit, l2_hit=l2_hit, served_by=served)

    # -- statistics ----------------------------------------------------------------

    @property
    def stats(self) -> CoherenceStats:
        """Protocol counters (invalidations, snoops, L2 misses...)."""
        return self.bus.stats

    @property
    def interconnect(self) -> Interconnect:
        return self.bus.interconnect

    def l1_miss_rate(self) -> float:
        """Aggregate L1 miss rate across cores."""
        hits = sum(c.stats.hits for c in self.l1s)
        misses = sum(c.stats.misses for c in self.l1s)
        total = hits + misses
        return misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero all counters; cache *contents* are preserved."""
        for c in self.l1s + self.l2s:
            c.stats.__init__()
        self.bus.reset_stats()
        self.l1_sibling_invalidations = 0

    def flush_all(self) -> None:
        """Empty every cache (between independent runs)."""
        for c in self.l1s + self.l2s:
            c.flush()
