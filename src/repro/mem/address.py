"""Virtual-address arithmetic and address-space layout.

Workload kernels operate on *named regions* of a simulated virtual address
space (``AddressSpace``): each array a kernel touches is a page-aligned
region, and kernels emit raw virtual addresses.  The TLB works at page
granularity and the caches at line granularity; the helpers here perform
the splits, vectorized over numpy arrays so trace generation stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.util.validation import check_power_of_two

#: Default page size (bytes).  4 KiB matches both x86-64 and UltraSPARC
#: base pages, the two architecture families the paper discusses.
DEFAULT_PAGE_SIZE = 4096

#: Default cache-line size (bytes), Table II of the paper.
DEFAULT_LINE_SIZE = 64

ArrayOrInt = Union[int, np.ndarray]


def page_of(addr: ArrayOrInt, page_size: int = DEFAULT_PAGE_SIZE) -> ArrayOrInt:
    """Virtual page number containing ``addr`` (vectorized)."""
    shift = int(page_size).bit_length() - 1
    if isinstance(addr, np.ndarray):
        return addr >> shift
    return int(addr) >> shift


def line_of(addr: ArrayOrInt, line_size: int = DEFAULT_LINE_SIZE) -> ArrayOrInt:
    """Cache-line number containing ``addr`` (vectorized)."""
    shift = int(line_size).bit_length() - 1
    if isinstance(addr, np.ndarray):
        return addr >> shift
    return int(addr) >> shift


def offset_in_page(addr: ArrayOrInt, page_size: int = DEFAULT_PAGE_SIZE) -> ArrayOrInt:
    """Byte offset of ``addr`` within its page (vectorized)."""
    mask = int(page_size) - 1
    if isinstance(addr, np.ndarray):
        return addr & mask
    return int(addr) & mask


def line_index(addr: ArrayOrInt, num_sets: int, line_size: int = DEFAULT_LINE_SIZE) -> ArrayOrInt:
    """Cache set index for ``addr`` in a cache with ``num_sets`` sets."""
    ln = line_of(addr, line_size)
    mask = int(num_sets) - 1
    if isinstance(ln, np.ndarray):
        return ln & mask
    return int(ln) & mask


@dataclass(frozen=True)
class Region:
    """A named, page-aligned span of the virtual address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def addr(self, offset: ArrayOrInt) -> ArrayOrInt:
        """Virtual address of byte ``offset`` within the region.

        ``offset`` may be a numpy array; bounds are checked on scalars and
        on array min/max (cheap, catches generator bugs early).
        """
        if isinstance(offset, np.ndarray):
            if offset.size:
                lo = int(offset.min())
                hi = int(offset.max())
                if lo < 0 or hi >= self.size:
                    raise IndexError(
                        f"offsets [{lo}, {hi}] out of range for region "
                        f"{self.name!r} of size {self.size}"
                    )
            return offset.astype(np.int64) + self.base
        off = int(offset)
        if not 0 <= off < self.size:
            raise IndexError(f"offset {off} out of range for region {self.name!r}")
        return self.base + off

    def pages(self, page_size: int = DEFAULT_PAGE_SIZE) -> range:
        """Range of virtual page numbers the region spans."""
        first = self.base // page_size
        last = (self.end - 1) // page_size
        return range(first, last + 1)

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the region."""
        return self.base <= addr < self.end


class AddressSpace:
    """Page-aligned bump allocator for named regions.

    Each workload builds one AddressSpace and allocates a region per logical
    array (grid slabs, key buffers, halo pages...).  A one-page guard gap is
    left between regions so adjacent regions never share a page — sharing in
    the traces is then *only* what the kernel deliberately expresses.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, base: int = DEFAULT_PAGE_SIZE):
        check_power_of_two("page_size", page_size)
        if base % page_size != 0:
            raise ValueError(f"base {base:#x} must be page aligned")
        self.page_size = page_size
        self._cursor = base
        self._regions: Dict[str, Region] = {}

    def allocate(self, name: str, size: int, guard: bool = True) -> Region:
        """Allocate ``size`` bytes as region ``name`` (page aligned)."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        aligned = -(-size // self.page_size) * self.page_size
        region = Region(name=name, base=self._cursor, size=size)
        self._cursor += aligned + (self.page_size if guard else 0)
        self._regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def regions(self) -> Dict[str, Region]:
        """Mapping of all allocated regions (insertion ordered)."""
        return dict(self._regions)

    @property
    def footprint(self) -> int:
        """Total bytes spanned, including alignment and guard pages."""
        return self._cursor

    def region_for(self, addr: int) -> Region:
        """Region containing ``addr`` (linear scan; debugging helper)."""
        for region in self._regions.values():
            if region.contains(addr):
                return region
        raise KeyError(f"address {addr:#x} not in any region")
