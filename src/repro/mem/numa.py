"""NUMA memory model: first-touch page homes, remote-access penalty.

The paper's conclusion predicts larger mapping gains on NUMA machines
("Expected performance improvements in NUMA architectures are higher,
because of larger differences in communication latencies").  This module
adds the missing latency asymmetry: each memory page is *homed* on the
chip whose core first touched it (Linux's default first-touch placement),
and a memory fetch from a non-home chip pays an extra penalty.

The model plugs into the :class:`~repro.mem.coherence.CoherenceBus` as its
``memory_model``: the bus asks it for the fill latency of every request
that reaches DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.validation import check_positive


@dataclass(frozen=True)
class NUMAConfig:
    """NUMA latency parameters.

    Attributes:
        local_latency: cycles for a fill from the chip's own controller.
        remote_penalty: extra cycles when the page is homed on another
            chip (QPI/HyperTransport hop, roughly +60-100% on real parts).
        page_size: home granularity (OS pages).
        auto_migrate: enable AutoNUMA-style page migration — a page that
            keeps being fetched remotely is rehomed to the fetching chip
            (the *data mapping* complement to the paper's thread mapping;
            cf. Broquedis et al. [13] in the related work).
        migrate_threshold: consecutive-ish remote fetches by one chip
            before its page migrates.
        migrate_latency: one-off extra cycles charged to the access that
            triggers a migration (the page copy).
    """

    local_latency: int = 200
    remote_penalty: int = 160
    page_size: int = 4096
    auto_migrate: bool = False
    migrate_threshold: int = 4
    migrate_latency: int = 600

    def __post_init__(self) -> None:
        check_positive("local_latency", self.local_latency)
        check_positive("remote_penalty", self.remote_penalty)
        check_positive("page_size", self.page_size)
        check_positive("migrate_threshold", self.migrate_threshold)
        check_positive("migrate_latency", self.migrate_latency)


class FirstTouchNUMA:
    """First-touch page-home tracking + fill-latency oracle."""

    def __init__(self, config: NUMAConfig | None = None, line_size: int = 64):
        self.config = config or NUMAConfig()
        self._page_shift = (
            self.config.page_size.bit_length() - 1
            - (line_size.bit_length() - 1)
        )  # shift from line number to page number
        self._home: Dict[int, int] = {}
        self.local_fetches = 0
        self.remote_fetches = 0

    def page_of_line(self, line: int) -> int:
        """Page number containing cache line ``line``."""
        return line >> self._page_shift

    def home_of(self, line: int) -> int | None:
        """Chip the line's page is homed on (None before first touch)."""
        return self._home.get(self.page_of_line(line))

    def memory_latency(self, chip: int, line: int) -> int:
        """Fill latency for ``chip`` fetching ``line`` from memory.

        First touch homes the page on the requesting chip.
        """
        page = line >> self._page_shift
        home = self._home.get(page)
        if home is None:
            self._home[page] = chip
            home = chip
        if home == chip:
            self.local_fetches += 1
            return self.config.local_latency
        self.remote_fetches += 1
        return self.config.local_latency + self.config.remote_penalty

    @property
    def remote_fraction(self) -> float:
        """Fraction of DRAM fills served from a remote chip."""
        total = self.local_fetches + self.remote_fetches
        return self.remote_fetches / total if total else 0.0

    @property
    def homed_pages(self) -> int:
        return len(self._home)

    def reset_stats(self) -> None:
        """Zero fetch counters; page homes persist (they are OS state)."""
        self.local_fetches = 0
        self.remote_fetches = 0


class AutoNUMA(FirstTouchNUMA):
    """First-touch homing plus threshold-based page migration.

    Mirrors Linux's AutoNUMA in spirit: each page tracks remote fetches
    per chip; once one chip accumulates ``migrate_threshold`` of them, the
    page is rehomed there (the triggering access pays ``migrate_latency``
    for the copy) and the counters reset.  Local fetches decay the
    counters, so ping-ponging between chips that genuinely share the page
    does not thrash migrations.
    """

    def __init__(self, config: NUMAConfig | None = None, line_size: int = 64):
        super().__init__(config or NUMAConfig(auto_migrate=True), line_size)
        self._remote_counts: Dict[int, Dict[int, int]] = {}
        self.page_migrations = 0

    def memory_latency(self, chip: int, line: int) -> int:
        """Fill latency; counts remote claims and migrates hot pages."""
        page = line >> self._page_shift
        home = self._home.get(page)
        if home is None:
            self._home[page] = chip
            self.local_fetches += 1
            return self.config.local_latency
        if home == chip:
            self.local_fetches += 1
            # Local use decays foreign claims on this page.
            counts = self._remote_counts.get(page)
            if counts:
                for other in list(counts):
                    counts[other] -= 1
                    if counts[other] <= 0:
                        del counts[other]
            return self.config.local_latency
        self.remote_fetches += 1
        counts = self._remote_counts.setdefault(page, {})
        counts[chip] = counts.get(chip, 0) + 1
        if counts[chip] >= self.config.migrate_threshold:
            self._home[page] = chip
            self._remote_counts.pop(page, None)
            self.page_migrations += 1
            return (self.config.local_latency + self.config.remote_penalty
                    + self.config.migrate_latency)
        return self.config.local_latency + self.config.remote_penalty

    def reset_stats(self) -> None:
        """Zero fetch counters; homes and migration counters persist."""
        super().reset_stats()


class UniformMemory:
    """UMA stand-in with the same interface (always local latency)."""

    def __init__(self, latency: int = 200):
        self.latency = latency

    def memory_latency(self, chip: int, line: int) -> int:
        """Same fill latency regardless of requester or page."""
        return self.latency
