"""Memory-system substrate: addresses, caches, MESI coherence, interconnect.

This package models everything below the core: the physical/virtual address
arithmetic, set-associative caches with write-through (L1) and write-back
(L2) policies, a MESI snooping coherence protocol whose invalidation and
cache-to-cache (snoop) transaction counters reproduce the quantities the
paper measures with hardware performance counters, and an intra/inter-chip
interconnect traffic model.
"""

from repro.mem.address import (
    DEFAULT_LINE_SIZE,
    DEFAULT_PAGE_SIZE,
    AddressSpace,
    Region,
    line_index,
    line_of,
    offset_in_page,
    page_of,
)
from repro.mem.cache import Cache, CacheConfig, CacheStats, MESIState
from repro.mem.coherence import CoherenceBus, CoherenceStats
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.mem.interconnect import Interconnect, InterconnectStats
from repro.mem.numa import AutoNUMA, FirstTouchNUMA, NUMAConfig, UniformMemory

__all__ = [
    "DEFAULT_LINE_SIZE",
    "DEFAULT_PAGE_SIZE",
    "AddressSpace",
    "Region",
    "line_index",
    "line_of",
    "offset_in_page",
    "page_of",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MESIState",
    "CoherenceBus",
    "CoherenceStats",
    "AccessResult",
    "MemoryHierarchy",
    "Interconnect",
    "InterconnectStats",
    "AutoNUMA",
    "FirstTouchNUMA",
    "NUMAConfig",
    "UniformMemory",
]
