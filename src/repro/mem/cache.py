"""Set-associative cache tag store with MESI line states.

One :class:`Cache` instance models one physical cache (an L1 or an L2 slice
of the Harpertown-style hierarchy in Table II of the paper).  It is purely a
tag/state store with LRU replacement; the *protocol* (who gets invalidated
when, what counts as a snoop) lives in :mod:`repro.mem.coherence`, and the
level wiring in :mod:`repro.mem.hierarchy`.

Line states use the MESI lattice even for the write-through L1s (which only
ever hold SHARED lines); this keeps one code path and makes protocol
assertions uniform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.validation import check_positive, check_power_of_two


class MESIState(enum.IntEnum):
    """MESI coherence states.  INVALID lines are not stored."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and latency (paper Table II shapes the defaults).

    ``num_sets = size / (line_size * ways)`` need not be a power of two
    (6 MiB / 64 B / 8 ways = 12288 sets); the index is taken modulo the set
    count, trading a shift for a modulo — irrelevant at simulation speed.
    """

    size: int = 32 * 1024
    ways: int = 4
    line_size: int = 64
    latency: int = 2
    write_back: bool = False
    name: str = "L1"

    def __post_init__(self) -> None:
        check_positive("size", self.size)
        check_power_of_two("ways", self.ways)
        check_power_of_two("line_size", self.line_size)
        check_positive("latency", self.latency)
        if self.size % (self.line_size * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"line_size*ways = {self.line_size * self.ways}"
            )

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass
class CacheStats:
    """Per-cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations_received: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """LRU set-associative tag store.

    Lines are identified by their *line number* (address >> log2(line_size));
    callers do the split once so multiple caches can share it.
    """

    def __init__(self, config: CacheConfig, owner_id: int = 0):
        self.config = config
        self.owner_id = owner_id
        self.stats = CacheStats()
        # One dict per set: line -> [state, stamp].  Dicts keep lookups O(1)
        # even for the 12288-set L2, and sets never exceed `ways` entries.
        self._sets: List[Dict[int, List[int]]] = [
            {} for _ in range(config.num_sets)
        ]
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._clock = 0

    # -- lookup/fill ---------------------------------------------------------

    def set_index(self, line: int) -> int:
        """Set that ``line`` maps to."""
        return line % self._num_sets

    def lookup(self, line: int) -> int:
        """LRU-updating lookup; returns the line state (INVALID on miss).

        Hot path: returns the raw int value of the :class:`MESIState` —
        ``MESIState`` is an IntEnum, so ``== MESIState.SHARED`` comparisons
        work, without paying enum construction per access.

        A hit re-inserts the entry (move-to-end), maintaining the class
        invariant that each set dict iterates in ascending-stamp order —
        which is what lets :meth:`insert` evict ``next(iter(set))`` in
        O(1) instead of scanning stamps.  Stamps stay authoritative (and
        unique), so the chosen victim is identical either way.
        """
        self._clock += 1
        s = self._sets[line % self._num_sets]
        entry = s.pop(line, None)
        if entry is None:
            self.stats.misses += 1
            return 0  # MESIState.INVALID
        entry[1] = self._clock
        s[line] = entry
        self.stats.hits += 1
        return entry[0]

    def probe(self, line: int) -> int:
        """Non-destructive state query (snoop path: no LRU, no counters).

        Returns the raw int state like :meth:`lookup`.
        """
        entry = self._sets[line % self._num_sets].get(line)
        return entry[0] if entry is not None else 0

    def insert(self, line: int, state: MESIState) -> Optional[Tuple[int, MESIState]]:
        """Install ``line`` in ``state``; returns ``(victim, victim_state)``
        if an eviction was needed, else None.

        A MODIFIED victim is counted as a writeback here; the caller decides
        whether to charge memory traffic for it.
        """
        if state is MESIState.INVALID:
            raise ValueError("cannot insert a line in INVALID state")
        self._clock += 1
        s = self._sets[line % self._num_sets]
        existing = s.pop(line, None)
        if existing is not None:
            existing[0] = int(state)
            existing[1] = self._clock
            s[line] = existing
            return None
        victim = None
        if len(s) >= self._ways:
            # Move-to-end on every stamp update keeps dict iteration order
            # == ascending-stamp order, so the LRU victim is simply the
            # first key — no scan (see lookup()).
            vline = next(iter(s))
            vstate = s.pop(vline)[0]
            self.stats.evictions += 1
            if vstate == MESIState.MODIFIED:
                self.stats.writebacks += 1
            victim = (vline, MESIState(vstate))
        s[line] = [int(state), self._clock]
        return victim

    def set_state(self, line: int, state: MESIState) -> None:
        """Change the state of a resident line (protocol transitions)."""
        entry = self._sets[line % self._num_sets].get(line)
        if entry is None:
            raise KeyError(f"line {line:#x} not resident in {self.config.name}")
        if state is MESIState.INVALID:
            raise ValueError("use invalidate() to drop a line")
        entry[0] = int(state)

    def invalidate(self, line: int) -> int:
        """Drop a line; returns its prior raw int state (0/INVALID if absent)."""
        s = self._sets[line % self._num_sets]
        entry = s.pop(line, None)
        if entry is None:
            return 0  # MESIState.INVALID
        self.stats.invalidations_received += 1
        return entry[0]

    def flush(self) -> int:
        """Drop everything; returns the number of MODIFIED lines dropped."""
        dirty = 0
        for s in self._sets:
            for entry in s.values():
                if entry[0] == int(MESIState.MODIFIED):
                    dirty += 1
            s.clear()
        return dirty

    # -- content inspection ----------------------------------------------------

    def resident_lines(self) -> Iterator[Tuple[int, MESIState]]:
        """Iterate ``(line, state)`` over all resident lines."""
        for s in self._sets:
            for line, entry in s.items():
                yield line, MESIState(entry[0])

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def __contains__(self, line: int) -> bool:
        return line in self._sets[line % self._num_sets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (
            f"Cache({c.name}#{self.owner_id}, {c.size // 1024}KiB/"
            f"{c.ways}w, occ={self.occupancy()})"
        )
