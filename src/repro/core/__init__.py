"""The paper's contribution: TLB-based communication detection + analysis.

* :class:`CommunicationMatrix` — the pairwise thread-communication
  representation everything else consumes (Section III-C).
* :class:`SoftwareManagedDetector` — the SM mechanism: sampled TLB-miss
  trap handler searching the other cores' TLBs (Section IV-A).
* :class:`HardwareManagedDetector` — the HM mechanism: periodic
  all-pairs TLB content scan (Section IV-B).
* :class:`OracleDetector` / :func:`oracle_matrix` — the full-trace
  instrumentation baseline of the related work, used as ground truth.
* :mod:`~repro.core.accuracy` — similarity metrics between detected and
  ground-truth matrices.
* :mod:`~repro.core.overhead` — the cost model behind Table I and
  Table III.
"""

from repro.core.commmatrix import CommunicationMatrix
from repro.core.detection import Detector, DetectorConfig
from repro.core.sm_detector import SoftwareManagedDetector
from repro.core.hm_detector import HardwareManagedDetector
from repro.core.oracle import OracleDetector, oracle_matrix
from repro.core.history import CommunicationHistory, pattern_drift
from repro.core.dynamic import MigrationController
from repro.core.streaming import DecayedCommMatrix, SlidingWindowCommMatrix
from repro.core.accuracy import (
    cosine_similarity,
    heterogeneity,
    pattern_class_of,
    pearson_similarity,
)
from repro.core.overhead import (
    OverheadReport,
    hm_scan_comparisons,
    overhead_report,
    sm_search_comparisons,
)

__all__ = [
    "CommunicationMatrix",
    "Detector",
    "DetectorConfig",
    "SoftwareManagedDetector",
    "HardwareManagedDetector",
    "OracleDetector",
    "oracle_matrix",
    "CommunicationHistory",
    "pattern_drift",
    "MigrationController",
    "DecayedCommMatrix",
    "SlidingWindowCommMatrix",
    "cosine_similarity",
    "heterogeneity",
    "pattern_class_of",
    "pearson_similarity",
    "OverheadReport",
    "hm_scan_comparisons",
    "overhead_report",
    "sm_search_comparisons",
]
