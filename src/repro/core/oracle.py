"""Ground-truth communication detection from full memory traces.

This is the approach of the related work the paper argues against
(Barrow-Williams et al., Cruz et al. [10]): instrument *every* memory
access and derive the communication pattern offline.  We keep it as the
accuracy oracle for the TLB mechanisms — and, because we already have the
traces in memory as numpy arrays, it is fully vectorized instead of
100-gigabyte trace files.

Counting semantics: two threads communicate through page *p* by the volume
they could have exchanged there — ``min(accesses_i(p), accesses_j(p))``.

By default counts aggregate over the *whole execution*, exactly like the
related-work instrumentation (which logs every access with no timing) —
this also captures cross-phase producer/consumer communication such as
LU's wavefront.  Passing ``windows_per_phase`` switches to windowed
counting: sharing only counts within a time window, which bounds *false
communication* (Section III-B5 — threads touching the same page in
disjoint execution windows are not communicating) and is the hook for the
paper's future-work dynamic detection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.detection import Detector, DetectorConfig
from repro.workloads.base import Phase, Workload


def _page_counts(addrs: np.ndarray, shift: int) -> Dict[int, int]:
    """{page: access count} for one stream slice (vectorized)."""
    if len(addrs) == 0:
        return {}
    pages, counts = np.unique(addrs >> shift, return_counts=True)
    return dict(zip(pages.tolist(), counts.tolist()))


def _pair_overlap(ci: Dict[int, int], cj: Dict[int, int]) -> int:
    """Σ over shared pages of min(count_i, count_j)."""
    small, large = (ci, cj) if len(ci) <= len(cj) else (cj, ci)
    amount = 0
    for page, c in small.items():
        other = large.get(page)
        if other is not None:
            amount += c if c < other else other
    return amount


def _accumulate_window(
    matrix: CommunicationMatrix, counts: List[Dict[int, int]]
) -> None:
    n = len(counts)
    for i in range(n):
        if not counts[i]:
            continue
        for j in range(i + 1, n):
            if not counts[j]:
                continue
            amount = _pair_overlap(counts[i], counts[j])
            if amount:
                matrix.increment(i, j, amount)


def oracle_matrix(
    workload: "Workload | Iterable[Phase]",
    page_size: int = 4096,
    windows_per_phase: Optional[int] = None,
) -> CommunicationMatrix:
    """Exact page-level communication matrix from the full trace.

    ``windows_per_phase=None`` (default) counts over the whole execution;
    an integer switches to windowed counting (see module docstring).
    """
    if windows_per_phase is not None and windows_per_phase < 1:
        raise ValueError("windows_per_phase must be >= 1 (or None)")
    shift = int(page_size).bit_length() - 1
    phases = workload.phases() if isinstance(workload, Workload) else iter(workload)
    matrix: Optional[CommunicationMatrix] = None
    global_counts: List[Dict[int, int]] = []
    for phase in phases:
        n = phase.num_threads
        if matrix is None:
            matrix = CommunicationMatrix(n)
            global_counts = [{} for _ in range(n)]
        if windows_per_phase is None:
            # Whole-execution mode: just accumulate per-thread counts.
            for t, stream in enumerate(phase.streams):
                for page, c in _page_counts(stream.addrs, shift).items():
                    global_counts[t][page] = global_counts[t].get(page, 0) + c
            continue
        for w in range(windows_per_phase):
            counts: List[Dict[int, int]] = []
            for stream in phase.streams:
                total = len(stream)
                lo = total * w // windows_per_phase
                hi = total * (w + 1) // windows_per_phase
                counts.append(_page_counts(stream.addrs[lo:hi], shift))
            _accumulate_window(matrix, counts)
    if matrix is None:
        raise ValueError("workload produced no phases")
    if windows_per_phase is None:
        _accumulate_window(matrix, global_counts)
    return matrix


class OracleDetector(Detector):
    """Detector-protocol wrapper around :func:`oracle_matrix`.

    The oracle does not observe the simulated machine at all — it consumes
    the workload trace directly — but exposing it through the Detector
    interface lets the experiment runner treat {SM, HM, oracle} uniformly.
    The matrix is computed eagerly at construction.
    """

    name = "oracle"

    def __init__(
        self,
        workload: "Workload | Iterable[Phase]",
        num_threads: int,
        page_size: int = 4096,
        windows_per_phase: Optional[int] = None,
        config: Optional[DetectorConfig] = None,
    ):
        super().__init__(num_threads, config)
        self.windows_per_phase = windows_per_phase
        self.matrix = oracle_matrix(
            workload, page_size=page_size, windows_per_phase=windows_per_phase
        )
        if self.matrix.num_threads != num_threads:
            raise ValueError(
                f"trace has {self.matrix.num_threads} threads, expected {num_threads}"
            )

    def attach(self, system: object, core_to_thread: Dict[int, int]) -> None:  # noqa: D102 - no-op
        pass

    def detach(self) -> None:  # noqa: D102 - no-op
        pass

    def summary(self) -> dict:
        return {
            "mechanism": "oracle (full trace)",
            "windows_per_phase": self.windows_per_phase,
            "total_communication": self.matrix.total,
        }
