"""The software-managed TLB mechanism (Section IV-A, Figure 1a).

On architectures where a TLB miss traps to the OS (SPARC, MIPS), the trap
handler is a free hook point: besides refilling the entry, the kernel can
search the *other* cores' TLBs for the page that just missed.  A resident
match on core *o* means core *o* touched the page recently — communication
between the threads on the two cores.

Flowchart, as implemented in :meth:`_on_miss`:

1. compare a per-core counter against the sampling threshold ``n``;
2. below threshold → increment, return (fast path, ~2 cycles);
3. at threshold → reset the counter and probe every other TLB for the
   missing page, incrementing the communication matrix per match
   (231 cycles, the paper's measured routine cost).

Because the probed TLBs are set-associative, each probe inspects only the
ways of one set: the search is Θ(P) in the number of cores — the paper's
headline complexity argument for SM (Table I).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.detection import Detector, DetectorConfig
from repro.obs.trace import NULL_TRACER, get_tracer


class SoftwareManagedDetector(Detector):
    """SM mechanism: sampled TLB-miss-time search of the other TLBs."""

    name = "SM"

    def __init__(self, num_threads: int, config: Optional[DetectorConfig] = None):
        super().__init__(num_threads, config)
        self._counters: Dict[int, int] = {}
        self.misses_seen = 0
        self.searches_run = 0
        self.matches_found = 0
        self.detection_cycles = 0
        self._tracer = NULL_TRACER

    def _on_attach(self) -> None:
        self._counters = {core: 0 for core in self._core_to_thread}
        self._tlbs = self._system.tlbs
        # Cached once per run: the miss hook is the simulator's hottest
        # detector path and must not re-probe the tracer per miss.
        self._tracer = get_tracer()
        for mmu in self._system.mmus:
            mmu.add_miss_hook(self._on_miss)

    def _on_detach(self) -> None:
        for mmu in self._system.mmus:
            if self._on_miss in mmu.miss_hooks:
                mmu.miss_hooks.remove(self._on_miss)

    def _on_rebind(self) -> None:
        # Sampling counters are per-core OS state; they follow the cores.
        self._counters = {
            core: self._counters.get(core, 0) for core in self._core_to_thread
        }

    # -- the trap-handler hook ---------------------------------------------------

    def _on_miss(self, core_id: int, vpn: int, now_cycles: int) -> int:
        """TLB-miss hook; returns cycles to charge to the faulting core.

        ``now_cycles`` is the faulting core's simulated clock (threaded
        through the MMU at quantum resolution) — the timestamp stamped on
        ``sm.scan`` trace events and fanned out to streaming sinks.  An
        earlier version stamped events with ``self.detection_cycles``
        (the detector's *cumulative overhead counter*), which made events
        sort by overhead-so-far rather than by time in Chrome-trace
        exports.
        """
        me = self._core_to_thread.get(core_id)
        if me is None:
            return 0  # miss on a core not running an application thread
        self.misses_seen += 1
        count = self._counters[core_id]
        if count + 1 < self.config.sm_sample_threshold:
            self._counters[core_id] = count + 1
            self.detection_cycles += self.config.sm_increment_cycles
            return self.config.sm_increment_cycles
        self._counters[core_id] = 0
        self.searches_run += 1
        self.detection_cycles += self.config.sm_routine_cycles
        tracer = self._tracer
        if vpn in self.ignored_pages:
            # Text/library page: the search still ran (the OS only knows
            # after inspecting the address), but matches are not counted.
            if tracer.enabled:
                tracer.event(
                    "sm.scan",
                    cat="detector.sm",
                    cycles=now_cycles,
                    args={"core": core_id, "matches": 0, "ignored": True},
                )
            return self.config.sm_routine_cycles
        found_before = self.matches_found
        for other_core, other_thread in self._core_to_thread.items():
            if other_core == core_id:
                continue
            if self._tlbs[other_core].probe(vpn):
                self.matches_found += 1
                self._emit(me, other_thread, 1.0, now_cycles)
        if tracer.enabled:
            tracer.event(
                "sm.scan",
                cat="detector.sm",
                cycles=now_cycles,
                args={"core": core_id, "matches": self.matches_found - found_before},
            )
        return self.config.sm_routine_cycles

    # -- reporting ------------------------------------------------------------------

    @property
    def sampled_fraction(self) -> float:
        """Fraction of observed misses for which the search ran (Table III)."""
        return self.searches_run / self.misses_seen if self.misses_seen else 0.0

    def summary(self) -> dict:
        return {
            "mechanism": "software-managed",
            "misses_seen": self.misses_seen,
            "searches_run": self.searches_run,
            "sampled_fraction": self.sampled_fraction,
            "matches_found": self.matches_found,
            "detection_cycles": self.detection_cycles,
            "sample_threshold": self.config.sm_sample_threshold,
        }

    def reset(self) -> None:
        super().reset()
        self._counters = {core: 0 for core in self._counters}
        self.misses_seen = 0
        self.searches_run = 0
        self.matches_found = 0
        self.detection_cycles = 0
