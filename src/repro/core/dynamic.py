"""Dynamic thread migration driven by TLB-detected communication.

The paper stops at static mappings ("Dynamic migration requires an
algorithm to detect when the communication pattern changes, as well as
substantial modifications to the scheduler") and names both as future
work.  This module implements that future work inside the simulator:

* a :class:`MigrationController` snapshots an attached detector's matrix
  at phase boundaries (via :class:`~repro.core.history.CommunicationHistory`),
* smooths the last few windows into a current-pattern estimate (single
  sampled windows are noisy),
* and requests a remap only when the mapping the current pattern wants is
  *sufficiently better* than the mapping in force — a cost-hysteresis gate
  that makes the policy robust to sampling noise, plus a rate limiter and
  a per-thread migration cost charged by the simulator.

The simulator consumes the controller through one hook,
``on_phase_end(phase_index, now_cycles) -> Optional[mapping]``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.commmatrix import CommunicationMatrix
from repro.core.detection import Detector
from repro.core.history import CommunicationHistory, pattern_drift
from repro.machine.topology import Topology
from repro.mapping.hierarchical import hierarchical_mapping
from repro.mapping.quality import mapping_cost


class MigrationController:
    """Remaps threads when the detected communication pattern has changed
    enough that a different placement clearly wins.

    Args:
        detector: the attached detection mechanism whose cumulative matrix
            is observed (SM or HM; anything with a ``matrix``).
        topology: machine topology for the mapper and cost objective.
        drift_threshold: cheap pre-filter — only consider remapping when
            the smoothed window's pattern drifted at least this much
            (0..2) from the pattern the current mapping was derived from.
        hysteresis: remap only if the current mapping's cost on the
            smoothed window exceeds the proposed mapping's by this
            fraction (0.25 = the new placement must be ≥25% better).
        window_smoothing: number of recent windows summed into the
            current-pattern estimate.
        min_interval_cycles: rate limiter between remaps.
        min_window_communication: ignore windows with less total detected
            communication (no signal to act on).
        migration_cost_cycles: cycles charged per migrated thread by the
            simulator (context migration + scheduler work).
    """

    def __init__(
        self,
        detector: Detector,
        topology: Optional[Topology] = None,
        drift_threshold: float = 0.3,
        hysteresis: float = 0.25,
        window_smoothing: int = 2,
        min_interval_cycles: int = 200_000,
        min_window_communication: float = 10.0,
        migration_cost_cycles: int = 20_000,
    ):
        if not 0.0 <= drift_threshold <= 2.0:
            raise ValueError("drift_threshold must be in [0, 2]")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if window_smoothing < 1:
            raise ValueError("window_smoothing must be >= 1")
        self.detector = detector
        self.topology = topology or Topology()
        self.drift_threshold = drift_threshold
        self.hysteresis = hysteresis
        self.window_smoothing = window_smoothing
        self.min_interval_cycles = min_interval_cycles
        self.min_window_communication = min_window_communication
        self.migration_cost_cycles = migration_cost_cycles
        self.history = CommunicationHistory(detector.num_threads)
        self.migrations = 0
        self.mapping_log: List[List[int]] = []
        self._distance = self.topology.distance_matrix()
        self._current_mapping: Optional[List[int]] = None
        self._mapping_basis: Optional[CommunicationMatrix] = None
        self._last_remap_cycle: Optional[int] = None

    # -- pattern estimation -------------------------------------------------------

    def _smoothed_window(self) -> CommunicationMatrix:
        """Sum of the last ``window_smoothing`` windows."""
        n = len(self.history)
        take = min(self.window_smoothing, n)
        acc = self.history.window(-1)
        for i in range(2, take + 1):
            acc.add(self.history.window(-i))
        return acc

    # -- simulator hook ---------------------------------------------------------

    def on_phase_end(self, phase_index: int, now_cycles: int) -> Optional[List[int]]:
        """Called by the simulator at every barrier.

        Returns a new thread→core mapping to apply, or None to keep going.
        """
        self.history.record(self.detector.matrix, now_cycles)
        window = self._smoothed_window()
        if window.total < self.min_window_communication:
            return None  # not enough evidence
        if self._current_mapping is None:
            # First acted-on window: establish the initial mapping.
            return self._remap(window, now_cycles)
        if (
            self._last_remap_cycle is not None
            and now_cycles - self._last_remap_cycle < self.min_interval_cycles
        ):
            return None
        if pattern_drift(window, self._mapping_basis) < self.drift_threshold:
            return None
        proposed = hierarchical_mapping(window, self.topology)
        current_cost = mapping_cost(window, self._current_mapping, self._distance)
        proposed_cost = mapping_cost(window, proposed, self._distance)
        if current_cost <= proposed_cost * (1.0 + self.hysteresis):
            # The pattern moved, but the placement in force is still
            # (nearly) as good — refresh the basis, don't migrate.
            self._mapping_basis = window
            return None
        return self._remap(window, now_cycles, proposed)

    def _remap(
        self,
        window: CommunicationMatrix,
        now_cycles: int,
        proposed: Optional[List[int]] = None,
    ) -> Optional[List[int]]:
        mapping = proposed or hierarchical_mapping(window, self.topology)
        if mapping == self._current_mapping:
            self._mapping_basis = window
            return None
        self._current_mapping = list(mapping)
        self._mapping_basis = window
        self._last_remap_cycle = now_cycles
        self.migrations += 1
        self.mapping_log.append(list(mapping))
        return list(mapping)

    # -- reporting ------------------------------------------------------------------

    @property
    def current_mapping(self) -> Optional[List[int]]:
        return list(self._current_mapping) if self._current_mapping else None

    def summary(self) -> dict:
        """Controller statistics (migrations, windows, mapping log)."""
        return {
            "migrations": self.migrations,
            "windows_observed": len(self.history),
            "drift_threshold": self.drift_threshold,
            "hysteresis": self.hysteresis,
            "mapping_log": [list(m) for m in self.mapping_log],
        }
