"""Streaming views of the communication matrix.

The cumulative :class:`~repro.core.commmatrix.CommunicationMatrix` that a
detector accumulates answers "who ever communicated"; online remapping
needs "who is communicating *now*".  This module provides two incremental
estimators of the current pattern, fed directly from detection events
(register them as detector sinks — the :meth:`record` signature matches
:data:`~repro.core.detection.EventSink` exactly):

* :class:`DecayedCommMatrix` — exponentially-decayed counts with a
  half-life in cycles.  O(1) state, smooth forgetting; an event's weight
  halves every ``half_life_cycles``.
* :class:`SlidingWindowCommMatrix` — a ring of time buckets covering the
  last ``window_cycles``; events older than the window vanish entirely.
  Sharper phase-boundary response, slightly more state.

Both are **byte-deterministic**: state evolves only from the event
sequence (pair, amount, timestamp) through a fixed order of float64
operations, so identical event streams produce bit-identical
:meth:`state_bytes` — the property the online-remap determinism tests pin.
Decay/expiry are *lazy* (applied on access relative to the newest event
seen), so feeding the same events always lands in the same state no
matter how calls interleave with quiet periods.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.core.commmatrix import CommunicationMatrix


class DecayedCommMatrix:
    """Exponentially-decayed pairwise communication counts.

    Args:
        num_threads: matrix dimension.
        half_life_cycles: cycles after which an event's weight has
            halved.  Smaller = more reactive, noisier.
    """

    def __init__(self, num_threads: int, half_life_cycles: int = 1_000_000):
        if num_threads < 2:
            raise ValueError("communication needs at least 2 threads")
        if half_life_cycles < 1:
            raise ValueError("half_life_cycles must be >= 1")
        self.num_threads = num_threads
        self.half_life_cycles = half_life_cycles
        self._m = np.zeros((num_threads, num_threads), dtype=np.float64)
        self._now = 0
        self.events_recorded = 0

    def record(self, i: int, j: int, amount: float, now_cycles: int) -> None:
        """Fold one detection event into the decayed state.

        Matches the detector ``EventSink`` signature, so an instance's
        bound ``record`` can be registered via ``detector.add_sink``.
        """
        if i == j:
            return
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.advance(now_cycles)
        self._m[i, j] += amount
        self._m[j, i] += amount
        self.events_recorded += 1

    def advance(self, now_cycles: int) -> None:
        """Decay state up to ``now_cycles`` (monotone; earlier = no-op)."""
        if now_cycles <= self._now:
            return
        factor = 0.5 ** ((now_cycles - self._now) / self.half_life_cycles)
        self._m *= factor
        self._now = now_cycles

    def current(self) -> CommunicationMatrix:
        """The decayed pattern as a plain communication matrix (a copy)."""
        return CommunicationMatrix.from_array(self._m)

    @property
    def now_cycles(self) -> int:
        """Timestamp the state is decayed to (newest event seen)."""
        return self._now

    @property
    def total(self) -> float:
        """Decayed total communication (each pair once)."""
        return float(self._m.sum() / 2.0)

    def state_bytes(self) -> bytes:
        """Canonical serialization of the full estimator state.

        Byte-identical across runs for identical event sequences — the
        determinism contract the streaming tests hash.
        """
        header = struct.pack("<qqq", self.num_threads, self.half_life_cycles, self._now)
        return header + np.ascontiguousarray(self._m).tobytes()

    def reset(self) -> None:
        """Zero the state (keeps geometry and half-life)."""
        self._m[:] = 0.0
        self._now = 0
        self.events_recorded = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecayedCommMatrix(threads={self.num_threads}, "
            f"half_life={self.half_life_cycles}, now={self._now})"
        )


class SlidingWindowCommMatrix:
    """Pairwise counts over the trailing ``window_cycles``, bucketized.

    The window is a ring of ``num_buckets`` equal time slices; an event
    lands in the bucket covering its timestamp and disappears once the
    window slides past that bucket.  ``current()`` sums live buckets
    oldest-first (fixed order — float64 summation order is part of the
    determinism contract).

    Args:
        num_threads: matrix dimension.
        window_cycles: width of the trailing window.
        num_buckets: time resolution of expiry (window/num_buckets per
            bucket).
    """

    def __init__(
        self,
        num_threads: int,
        window_cycles: int = 2_000_000,
        num_buckets: int = 8,
    ):
        if num_threads < 2:
            raise ValueError("communication needs at least 2 threads")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if window_cycles < num_buckets:
            raise ValueError("window_cycles must be >= num_buckets")
        self.num_threads = num_threads
        self.window_cycles = window_cycles
        self.num_buckets = num_buckets
        self.bucket_cycles = window_cycles // num_buckets
        self._buckets: List[np.ndarray] = [
            np.zeros((num_threads, num_threads), dtype=np.float64)
            for _ in range(num_buckets)
        ]
        #: Absolute index (now // bucket_cycles) of the newest bucket.
        self._head = 0
        self.events_recorded = 0

    def record(self, i: int, j: int, amount: float, now_cycles: int) -> None:
        """Fold one detection event into its time bucket (sink-compatible)."""
        if i == j:
            return
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.advance(now_cycles)
        b = self._buckets[self._head % self.num_buckets]
        b[i, j] += amount
        b[j, i] += amount
        self.events_recorded += 1

    def advance(self, now_cycles: int) -> None:
        """Slide the window forward, clearing buckets that fell off."""
        idx = now_cycles // self.bucket_cycles
        if idx <= self._head:
            return
        steps = min(idx - self._head, self.num_buckets)
        for k in range(1, steps + 1):
            self._buckets[(self._head + k) % self.num_buckets][:] = 0.0
        self._head = idx

    def current(self) -> CommunicationMatrix:
        """Sum of live buckets, oldest-first, as a communication matrix."""
        acc = np.zeros((self.num_threads, self.num_threads), dtype=np.float64)
        for k in range(self.num_buckets - 1, -1, -1):
            acc += self._buckets[(self._head - k) % self.num_buckets]
        return CommunicationMatrix.from_array(acc)

    @property
    def now_cycles(self) -> int:
        """Start-of-head-bucket timestamp the window is advanced to."""
        return self._head * self.bucket_cycles

    @property
    def total(self) -> float:
        """Windowed total communication (each pair once)."""
        return float(sum(b.sum() for b in self._buckets) / 2.0)

    def state_bytes(self) -> bytes:
        """Canonical serialization of ring state (determinism contract)."""
        header = struct.pack(
            "<qqqq",
            self.num_threads,
            self.window_cycles,
            self.num_buckets,
            self._head,
        )
        body = b"".join(
            np.ascontiguousarray(
                self._buckets[(self._head - k) % self.num_buckets]
            ).tobytes()
            for k in range(self.num_buckets - 1, -1, -1)
        )
        return header + body

    def reset(self) -> None:
        """Zero every bucket (keeps geometry)."""
        for b in self._buckets:
            b[:] = 0.0
        self._head = 0
        self.events_recorded = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlidingWindowCommMatrix(threads={self.num_threads}, "
            f"window={self.window_cycles}, buckets={self.num_buckets})"
        )
