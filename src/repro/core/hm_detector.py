"""The hardware-managed TLB mechanism (Section IV-B, Figure 1b).

x86-style TLBs are refilled by a hardware walker — there is no miss trap
for the OS to piggyback on.  The paper instead proposes a small ISA
addition letting the kernel *read* TLB contents, and a periodic scan:
every ``n`` cycles (the paper uses 10 million), compare **all pairs** of
TLBs set by set and increment the communication matrix for every virtual
page resident in both.

The all-pairs scan is Θ(P²·S) for set-associative TLBs (Table I), and —
crucially for reproducing the paper's Figure 5 artifacts — it samples the
machine at *instants*: whichever pair of threads happens to have shared
pages resident when the timer fires dominates the matrix, which is how IS
and MG end up showing spurious hot rows ("the runtime behavior ... can
present a challenge to HM").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.detection import Detector, DetectorConfig
from repro.obs.trace import NULL_TRACER, get_tracer


class HardwareManagedDetector(Detector):
    """HM mechanism: periodic all-pairs comparison of TLB contents."""

    name = "HM"

    def __init__(self, num_threads: int, config: Optional[DetectorConfig] = None):
        super().__init__(num_threads, config)
        self.scans_run = 0
        self.matches_found = 0
        self.detection_cycles = 0
        self._last_scan = 0
        self._scan_core_rr = 0
        self._tracer = NULL_TRACER

    def _on_attach(self) -> None:
        self._tlbs = self._system.tlbs
        self._cores = sorted(self._core_to_thread)
        self._last_scan = 0
        self._scan_core_rr = 0
        # Cached once per run; poll() runs once per scheduling round.
        self._tracer = get_tracer()

    def _on_rebind(self) -> None:
        self._cores = sorted(self._core_to_thread)

    def poll(self, now_cycles: int) -> Optional[List[Tuple[int, int]]]:
        """Fire one scan per elapsed period since the last one.

        Mirrors the flowchart: compare ``now - period`` against the stored
        cycle counter of the last search; fire once *per elapsed period*
        (capped at ``hm_max_catchup_scans`` per poll) and advance the
        stored counter in period multiples.  Advancing it to ``now``
        instead silently dropped scans whenever a barrier clock jump or a
        large quantum spanned several periods, drifting the effective
        scan rate below 1/period.

        Returns one ``(core, hm_routine_cycles)`` charge per scan fired,
        with the round-robin cursor advanced per scan — a catch-up burst
        spreads its cost over distinct cores, just as the OS would rotate
        the scan duty across timer ticks.  (An earlier version billed the
        whole burst to a single core and advanced the cursor once per
        poll, skewing per-core overhead under barrier clock jumps.)
        """
        period = self.config.hm_period_cycles
        due = (now_cycles - self._last_scan) // period
        if due < 1:
            return None
        fires = min(due, self.config.hm_max_catchup_scans)
        self._last_scan += fires * period
        found_before = self.matches_found
        for _ in range(fires):
            self._scan(now_cycles)
        self.scans_run += fires
        self.detection_cycles += fires * self.config.hm_routine_cycles
        charges: List[Tuple[int, int]] = []
        for _ in range(fires):
            core = self._cores[self._scan_core_rr % len(self._cores)]
            self._scan_core_rr += 1
            charges.append((core, self.config.hm_routine_cycles))
        tracer = self._tracer
        if tracer.enabled:
            tracer.event(
                "hm.scan",
                cat="detector.hm",
                cycles=now_cycles,
                args={
                    "cores": [c for c, _ in charges],
                    "scans": fires,
                    "matches": self.matches_found - found_before,
                },
            )
        return charges

    # -- the scan ---------------------------------------------------------------

    def _scan(self, now_cycles: int = 0) -> None:
        """Compare every pair of TLBs set-by-set for matching entries."""
        cores = self._cores
        tlbs = self._tlbs
        c2t = self._core_to_thread
        ignored = self.ignored_pages
        num_sets = tlbs[cores[0]].config.num_sets
        for ai in range(len(cores)):
            core_a = cores[ai]
            thread_a = c2t[core_a]
            tlb_a = tlbs[core_a]
            for bi in range(ai + 1, len(cores)):
                core_b = cores[bi]
                thread_b = c2t[core_b]
                tlb_b = tlbs[core_b]
                matches = 0
                for s in range(num_sets):
                    entries_a = tlb_a.set_entries(s)
                    if not entries_a:
                        continue
                    entries_b = tlb_b.set_entries(s)
                    if not entries_b:
                        continue
                    # Set-associative: only same-set entries can match,
                    # which is what drops the complexity from Θ(P²S²)
                    # (fully associative) to Θ(P²S).
                    eb = set(entries_b)
                    for vpn in entries_a:
                        if vpn in eb and vpn not in ignored:
                            matches += 1
                if matches:
                    self.matches_found += matches
                    self._emit(thread_a, thread_b, float(matches), now_cycles)

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "mechanism": "hardware-managed",
            "scans_run": self.scans_run,
            "matches_found": self.matches_found,
            "detection_cycles": self.detection_cycles,
            "period_cycles": self.config.hm_period_cycles,
        }

    def reset(self) -> None:
        super().reset()
        self.scans_run = 0
        self.matches_found = 0
        self.detection_cycles = 0
        self._last_scan = 0
        self._scan_core_rr = 0
