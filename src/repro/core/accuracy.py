"""Accuracy metrics: how faithful is a detected communication matrix?

The paper evaluates its mechanisms qualitatively ("SM is more accurate
than HM", Figures 4/5 vs. the known patterns).  We quantify the comparison
against the full-trace oracle with scale-invariant similarities over the
pair amounts — detection mechanisms see *samples*, so only the relative
structure can match, never absolute counts.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.commmatrix import CommunicationMatrix

MatrixLike = Union[CommunicationMatrix, np.ndarray]


def _offdiag(m: MatrixLike) -> np.ndarray:
    if isinstance(m, CommunicationMatrix):
        return m.offdiagonal()
    a = np.asarray(m, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected square matrix, got shape {a.shape}")
    iu = np.triu_indices(a.shape[0], k=1)
    return a[iu]


def pearson_similarity(detected: MatrixLike, truth: MatrixLike) -> float:
    """Pearson correlation of pair amounts, in [-1, 1].

    1.0 means the detected matrix is an affine rescaling of the truth —
    exactly what a uniform-sampling mechanism should converge to.  Two
    constant matrices (e.g. both perfectly homogeneous) correlate at 1.0
    by convention; one constant vs. one structured gives 0.0.
    """
    a = _offdiag(detected)
    b = _offdiag(truth)
    if a.shape != b.shape:
        raise ValueError(f"matrix sizes differ: {a.shape} vs {b.shape}")
    sa = a.std()
    sb = b.std()
    if sa == 0 and sb == 0:
        return 1.0
    if sa == 0 or sb == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def cosine_similarity(detected: MatrixLike, truth: MatrixLike) -> float:
    """Cosine of the angle between pair-amount vectors, in [0, 1].

    Less shape-discriminating than Pearson (all-positive vectors always
    have positive cosine) but robust for sparse matrices.
    """
    a = _offdiag(detected)
    b = _offdiag(truth)
    if a.shape != b.shape:
        raise ValueError(f"matrix sizes differ: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 and nb == 0:
        return 1.0
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def heterogeneity(m: MatrixLike) -> float:
    """Coefficient of variation of pair amounts (0 = homogeneous)."""
    off = _offdiag(m)
    mean = off.mean()
    if mean == 0:
        return 0.0
    return float(off.std() / mean)


#: Heterogeneity threshold separating "homogeneous" (CG/EP/FT-like) from
#: "structured" patterns.  A perfectly uniform matrix has CV 0; a pure
#: nearest-neighbour ring on 8 threads has CV ≈ 1.7.
HOMOGENEITY_THRESHOLD = 0.5


def pattern_class_of(m: MatrixLike, threshold: float = HOMOGENEITY_THRESHOLD) -> str:
    """Classify a matrix as ``"homogeneous"`` or ``"structured"``.

    The paper's qualitative split: thread mapping can only help structured
    patterns ("if the communication pattern among the threads is
    homogeneous, no performance improvement can be achieved").
    """
    return "homogeneous" if heterogeneity(m) < threshold else "structured"
