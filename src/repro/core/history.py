"""Time-resolved communication history (the paper's dynamic-behaviour hook).

Detector matrices accumulate monotonically over a run; to see *changes* in
the communication pattern (Section III-B4) one needs windowed views:
``CommunicationHistory`` snapshots a detector's matrix at chosen instants
and exposes per-window deltas, plus a drift metric between windows.

This is the substrate for the paper's future work ("develop dynamic
migration strategies which use the mechanisms described here") implemented
in :mod:`repro.core.dynamic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.accuracy import pearson_similarity
from repro.core.commmatrix import CommunicationMatrix


@dataclass(frozen=True)
class Snapshot:
    """One recorded instant: cumulative matrix + the clock when taken."""

    cycle: int
    cumulative: CommunicationMatrix


def pattern_drift(a: CommunicationMatrix, b: CommunicationMatrix) -> float:
    """Dissimilarity between two windows, in [0, 2].

    ``1 - pearson`` over pair amounts: 0 for identical structure, 1 for
    uncorrelated, 2 for inverted.  Two empty windows have zero drift; an
    empty window against a populated one is maximal (the application went
    from communicating to not, or vice versa — that *is* a change).
    """
    a_total = a.total
    b_total = b.total
    if a_total == 0 and b_total == 0:
        return 0.0
    if a_total == 0 or b_total == 0:
        return 1.0
    return 1.0 - pearson_similarity(a, b)


class CommunicationHistory:
    """Ring buffer of matrix snapshots with windowed-delta access."""

    def __init__(self, num_threads: int, capacity: int = 32):
        if capacity < 2:
            raise ValueError("history needs capacity >= 2")
        self.num_threads = num_threads
        self.capacity = capacity
        self._snapshots: List[Snapshot] = []

    def record(self, matrix: CommunicationMatrix, cycle: int) -> None:
        """Snapshot the (cumulative) matrix at clock ``cycle``."""
        if matrix.num_threads != self.num_threads:
            raise ValueError("thread count mismatch")
        if self._snapshots and cycle < self._snapshots[-1].cycle:
            raise ValueError(
                f"snapshots must be recorded in clock order "
                f"({cycle} < {self._snapshots[-1].cycle})"
            )
        self._snapshots.append(Snapshot(cycle=cycle, cumulative=matrix.copy()))
        if len(self._snapshots) > self.capacity:
            self._snapshots.pop(0)

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def snapshots(self) -> List[Snapshot]:
        return list(self._snapshots)

    def window(self, index: int = -1) -> CommunicationMatrix:
        """Communication that happened *within* window ``index``.

        Window *i* is the delta between snapshots *i* and *i-1*; window 0
        is everything before the first snapshot.  Negative indices count
        from the most recent window, as usual.
        """
        n = len(self._snapshots)
        if n == 0:
            raise IndexError("no snapshots recorded")
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"window {index} out of range (have {n})")
        current = self._snapshots[index].cumulative.matrix
        previous = (
            self._snapshots[index - 1].cumulative.matrix
            if index > 0
            else np.zeros_like(current)
        )
        delta = current - previous
        # Guard against detector resets between snapshots.
        delta[delta < 0] = 0.0
        return CommunicationMatrix.from_array(delta)

    def latest_drift(self) -> Optional[float]:
        """Drift between the two most recent windows (None before that)."""
        if len(self._snapshots) < 2:
            return None
        return pattern_drift(self.window(-1), self.window(-2))

    def drift_series(self) -> List[float]:
        """Drift between each pair of consecutive windows."""
        return [
            pattern_drift(self.window(i), self.window(i - 1))
            for i in range(1, len(self._snapshots))
        ]
