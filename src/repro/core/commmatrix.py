"""The communication matrix (Section III-C of the paper).

Communication is tracked only between *pairs* of threads — the paper's
deliberate Θ(N²) compromise — as a symmetric non-negative matrix whose cell
``(i, j)`` accumulates detected sharing events between threads ``i`` and
``j``.  The diagonal is always zero (self-communication is meaningless).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.util.render import ascii_heatmap
from repro.util.validation import (
    ValidationError,
    check_finite_array,
    check_non_negative_array,
    check_square_array,
)


class CommunicationMatrix:
    """Symmetric thread×thread communication-amount accumulator."""

    def __init__(self, num_threads: int):
        if num_threads < 2:
            raise ValidationError("communication needs at least 2 threads")
        self.num_threads = num_threads
        self._m = np.zeros((num_threads, num_threads), dtype=np.float64)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray) -> "CommunicationMatrix":
        """Wrap an existing square array (symmetrized, diagonal cleared).

        The array is validated first: non-square shapes, NaN/Inf cells
        and negative amounts raise a typed
        :class:`~repro.util.validation.ValidationError` (a ``ValueError``
        subclass) instead of silently propagating garbage into detectors
        and solvers.
        """
        a = check_square_array("communication matrix", array)
        check_finite_array("communication matrix", a)
        check_non_negative_array("communication matrix", a)
        cm = cls(a.shape[0])
        sym = (a + a.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        cm._m = sym
        return cm

    def copy(self) -> "CommunicationMatrix":
        """Deep copy (snapshots for histories/tests)."""
        out = CommunicationMatrix(self.num_threads)
        out._m = self._m.copy()
        return out

    # -- accumulation ------------------------------------------------------------

    def increment(self, i: int, j: int, amount: float = 1.0) -> None:
        """Record ``amount`` of communication between threads ``i`` and ``j``."""
        if i == j:
            return  # self-sharing is not communication
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._m[i, j] += amount
        self._m[j, i] += amount

    def add(self, other: "CommunicationMatrix") -> "CommunicationMatrix":
        """In-place accumulate another matrix (phase merging)."""
        if other.num_threads != self.num_threads:
            raise ValueError("thread counts differ")
        self._m += other._m
        return self

    def scale(self, factor: float) -> "CommunicationMatrix":
        """In-place multiply by a non-negative factor."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self._m *= factor
        return self

    # -- views -------------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The underlying array (a defensive copy)."""
        return self._m.copy()

    def __getitem__(self, key: Tuple[int, int]) -> float:
        return float(self._m[key])

    @property
    def total(self) -> float:
        """Total communication (each pair counted once)."""
        return float(self._m.sum() / 2.0)

    def normalized(self) -> np.ndarray:
        """Matrix scaled so the largest off-diagonal cell is 1 (figures)."""
        peak = self._m.max()
        if peak == 0:
            return self._m.copy()
        return self._m / peak

    def row_sums(self) -> np.ndarray:
        """Per-thread total communication."""
        return self._m.sum(axis=1)

    def top_pairs(self, k: int = 5) -> List[Tuple[int, int, float]]:
        """The ``k`` most-communicating thread pairs, descending."""
        pairs = [
            (i, j, float(self._m[i, j]))
            for i in range(self.num_threads)
            for j in range(i + 1, self.num_threads)
        ]
        pairs.sort(key=lambda p: p[2], reverse=True)
        return pairs[:k]

    def heatmap(self, title: str = "") -> str:
        """ASCII rendering in the style of the paper's Figures 4/5."""
        return ascii_heatmap(self._m, title=title)

    # -- structure metrics ---------------------------------------------------------

    def offdiagonal(self) -> np.ndarray:
        """Flat array of the strict upper triangle (each pair once)."""
        iu = np.triu_indices(self.num_threads, k=1)
        return self._m[iu]

    def heterogeneity(self) -> float:
        """Coefficient of variation of pair amounts.

        ~0 for homogeneous patterns (CG/EP/FT), large for domain
        decomposition (BT/SP/...).  Zero when there is no communication.
        """
        off = self.offdiagonal()
        mean = off.mean()
        if mean == 0:
            return 0.0
        return float(off.std() / mean)

    def neighbor_fraction(self) -> float:
        """Fraction of communication between adjacent thread ids.

        High for domain-decomposition patterns where thread *t* shares its
        subdomain borders with threads *t±1*.
        """
        tot = self.total
        if tot == 0:
            return 0.0
        near = sum(
            float(self._m[t, t + 1]) for t in range(self.num_threads - 1)
        )
        return near / tot

    # -- persistence ---------------------------------------------------------------

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the matrix as CSV (one row per thread, float cells).

        The interchange format for external analysis tools — the paper's
        figures are exactly plots of these files.
        """
        np.savetxt(path, self._m, delimiter=",", fmt="%.6g")

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "CommunicationMatrix":
        """Load a matrix written by :meth:`to_csv` (validated on load).

        Unparseable files and files that parse into invalid matrices
        (NaN/Inf, negative, non-square) raise
        :class:`~repro.util.validation.ValidationError`.
        """
        try:
            raw = np.loadtxt(path, delimiter=",", ndmin=2)
        except (ValueError, OSError) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise ValidationError(f"cannot parse {path} as a matrix: {exc}") from exc
        return cls.from_array(raw)

    def check_invariants(self) -> None:
        """Assert symmetry / zero diagonal / non-negativity (tests, debug)."""
        if not np.allclose(self._m, self._m.T):
            raise AssertionError("communication matrix must be symmetric")
        if np.any(np.diag(self._m) != 0):
            raise AssertionError("diagonal must be zero")
        if np.any(self._m < 0):
            raise AssertionError("amounts must be non-negative")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunicationMatrix(threads={self.num_threads}, "
            f"total={self.total:.4g}, heterogeneity={self.heterogeneity():.3f})"
        )
