"""Detection-overhead model: Table I complexities and Table III statistics.

Two views of cost:

* **analytic** — comparison counts per search/scan as functions of core
  count P and TLB size S, reproducing the Θ(P) / Θ(P²S) rows of Table I
  (and their fully-associative variants Θ(P·S) / Θ(P²S²));
* **measured** — cycles actually charged by a detector during a simulated
  run, over total execution cycles, reproducing Table III's per-benchmark
  overhead percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.tlb.tlb import TLBConfig

if TYPE_CHECKING:  # import cycle guard: machine.simulator never imports core
    from repro.machine.simulator import SimResult


def sm_search_comparisons(
    num_cores: int, tlb: TLBConfig, fully_associative: bool | None = None
) -> int:
    """Tag comparisons for one SM search (one missing vpn vs. other TLBs).

    Set-associative: each remote TLB is probed in one set → ``(P-1)·ways``
    comparisons, constant in TLB size — the paper's Θ(P).  Fully
    associative: every entry must be checked → ``(P-1)·S``, the paper's
    Θ(P·S).
    """
    if fully_associative is None:
        fully_associative = tlb.fully_associative
    per_tlb = tlb.entries if fully_associative else tlb.ways
    return (num_cores - 1) * per_tlb


def hm_scan_comparisons(
    num_cores: int, tlb: TLBConfig, fully_associative: bool | None = None
) -> int:
    """Tag comparisons for one HM scan (all pairs of TLBs, full contents).

    Set-associative: matching entries must share a set, so each pair costs
    ``num_sets · ways²`` → Θ(P²·S).  Fully associative: every entry of one
    TLB against every entry of the other → ``S²`` per pair → Θ(P²·S²).
    """
    if fully_associative is None:
        fully_associative = tlb.fully_associative
    pairs = num_cores * (num_cores - 1) // 2
    per_pair = (
        tlb.entries * tlb.entries
        if fully_associative
        else tlb.num_sets * tlb.ways * tlb.ways
    )
    return pairs * per_pair


@dataclass(frozen=True)
class OverheadReport:
    """One row of Table III (plus the HM analogue)."""

    mechanism: str
    tlb_miss_rate: float          # misses / accesses
    sampled_fraction: float       # searches / misses (SM) or scans/run (HM: 1.0)
    detection_cycles: int
    machine_cycles: int           # Σ over cores of that core's cycles

    @property
    def overhead_fraction(self) -> float:
        """Detection cycles as a fraction of total machine cycles.

        Detection work executes on the core that triggered it (the
        faulting core for SM, the scanning core for HM) and the counters
        sum over all cores, so the denominator must too — this matches the
        paper's added-time-over-base-time definition.
        """
        if self.machine_cycles <= 0:
            return 0.0
        return self.detection_cycles / self.machine_cycles

    def as_row(self) -> tuple:
        """(miss rate %, sampled %, overhead %) — Table III column order."""
        return (
            100.0 * self.tlb_miss_rate,
            100.0 * self.sampled_fraction,
            100.0 * self.overhead_fraction,
        )


def overhead_report(detector_summary: dict, sim_result: "SimResult") -> OverheadReport:
    """Build an :class:`OverheadReport` from a detector summary + SimResult.

    Works for both mechanisms: SM summaries carry ``sampled_fraction``
    directly; HM scans are time-triggered, so the "fraction" column is not
    meaningful and reported as 1.0 (every scheduled scan ran).
    """
    mechanism = detector_summary.get("mechanism", "unknown")
    sampled = detector_summary.get("sampled_fraction", 1.0)
    core_cycles = getattr(sim_result, "core_cycles", None)
    machine_cycles = (
        sum(core_cycles) if core_cycles else int(sim_result.execution_cycles)
    )
    return OverheadReport(
        mechanism=mechanism,
        tlb_miss_rate=sim_result.tlb_miss_rate,
        sampled_fraction=float(sampled),
        detection_cycles=int(detector_summary.get("detection_cycles", 0)),
        machine_cycles=machine_cycles,
    )
