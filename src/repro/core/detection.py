"""Detector protocol shared by the SM, HM and oracle mechanisms.

A detector is attached to a :class:`~repro.machine.system.System` for the
duration of a simulated run.  It observes the machine through whatever
channel its mechanism allows — TLB-miss traps for SM, periodic privileged
TLB scans for HM — and accumulates a thread-level
:class:`~repro.core.commmatrix.CommunicationMatrix`.

TLBs belong to *cores*; the communication matrix is over *threads*.  The
``core_to_thread`` placement passed at attach time performs the
translation, so detection works under any pinning (the paper detects under
the identity placement, one thread per core).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.commmatrix import CommunicationMatrix
from repro.machine.system import System

#: Signature of a detection-event sink: (thread_i, thread_j, amount,
#: now_cycles).  Sinks observe the same increments the cumulative matrix
#: receives, but time-stamped — the feed for streaming/windowed views.
EventSink = Callable[[int, int, float, int], None]


@dataclass(frozen=True)
class DetectorConfig:
    """Parameters shared by both mechanisms (Table I)."""

    #: SM: run the search once every ``sm_sample_threshold`` TLB misses
    #: (the paper's n = 100, i.e. 1% of misses).
    sm_sample_threshold: int = 100
    #: Cycles of one SM search routine (paper measurement: 231).
    sm_routine_cycles: int = 231
    #: Cycles charged for the fast path (counter increment + compare).
    sm_increment_cycles: int = 2
    #: HM: cycles between all-pairs scans (the paper's n = 10,000,000).
    hm_period_cycles: int = 10_000_000
    #: Cycles of one HM scan routine (paper measurement: 84,297).
    hm_routine_cycles: int = 84_297
    #: HM: cap on catch-up scans per poll when more than one period
    #: elapsed between polls (barrier clock jumps, large quanta).  Keeps
    #: the effective scan rate at 1/period without unbounded bursts.
    hm_max_catchup_scans: int = 8

    def __post_init__(self) -> None:
        if self.sm_sample_threshold < 1:
            raise ValueError("sm_sample_threshold must be >= 1")
        if self.hm_period_cycles < 1:
            raise ValueError("hm_period_cycles must be >= 1")
        if self.hm_max_catchup_scans < 1:
            raise ValueError("hm_max_catchup_scans must be >= 1")


class Detector(abc.ABC):
    """Base class: lifecycle + matrix bookkeeping."""

    name: str = "detector"

    def __init__(self, num_threads: int, config: Optional[DetectorConfig] = None):
        self.num_threads = num_threads
        self.config = config or DetectorConfig()
        self.matrix = CommunicationMatrix(num_threads)
        self._system: Optional[System] = None
        self._core_to_thread: Dict[int, int] = {}
        #: Virtual pages excluded from matching (Section III-A1: only
        #: *data* accesses are relevant — shared read-only pages such as
        #: program text would register as uniform all-pairs communication.
        #: The OS knows its text/library mappings and filters them here).
        self.ignored_pages: Set[int] = set()
        self._sinks: List[EventSink] = []

    def add_sink(self, sink: EventSink) -> None:
        """Register a time-stamped consumer of detection increments.

        Sinks receive ``(thread_i, thread_j, amount, now_cycles)`` for
        every increment applied to :attr:`matrix` — the feed for
        streaming/windowed communication views.  Registration order is
        the delivery order (determinism).
        """
        self._sinks.append(sink)

    def _emit(self, ti: int, tj: int, amount: float, now_cycles: int) -> None:
        """Record an increment in the matrix and fan it out to sinks."""
        self.matrix.increment(ti, tj, amount)
        for sink in self._sinks:
            sink(ti, tj, amount, now_cycles)

    def ignore_pages(self, pages: Iterable[int]) -> None:
        """Exclude virtual page numbers from communication matching."""
        self.ignored_pages.update(int(p) for p in pages)

    # -- lifecycle --------------------------------------------------------------

    def attach(self, system: System, core_to_thread: Dict[int, int]) -> None:
        """Bind to a machine for one run."""
        if self._system is not None:
            raise RuntimeError(f"{self.name} is already attached")
        if len(core_to_thread) != self.num_threads:
            raise ValueError(
                f"{self.name}: placement covers {len(core_to_thread)} cores "
                f"for {self.num_threads} threads"
            )
        self._system = system
        self._core_to_thread = dict(core_to_thread)
        self._on_attach()

    def detach(self) -> None:
        """Unbind (idempotent); the accumulated matrix survives."""
        if self._system is None:
            return
        self._on_detach()
        self._system = None
        self._core_to_thread = {}

    def _on_attach(self) -> None:
        """Mechanism-specific hookup (override)."""

    def _on_detach(self) -> None:
        """Mechanism-specific teardown (override)."""

    def rebind(self, core_to_thread: Dict[int, int]) -> None:
        """Update the core→thread placement mid-run (thread migration).

        The accumulated matrix is kept — communication already observed
        stays attributed to the threads that performed it.
        """
        if self._system is None:
            raise RuntimeError(f"{self.name} is not attached")
        if len(core_to_thread) != self.num_threads:
            raise ValueError(
                f"{self.name}: placement covers {len(core_to_thread)} cores "
                f"for {self.num_threads} threads"
            )
        self._core_to_thread = dict(core_to_thread)
        self._on_rebind()

    def _on_rebind(self) -> None:
        """Mechanism-specific placement refresh (override)."""

    # -- simulator interface --------------------------------------------------------

    def poll(self, now_cycles: int) -> Optional[List[Tuple[int, int]]]:
        """Called at every scheduling round with the current global clock.

        Return a list of ``(core_id, cost_cycles)`` charges — one per
        detection routine run this poll — or None.  Returning a list lets
        a mechanism that ran several catch-up routines (HM after a barrier
        clock jump) spread their cost over distinct cores instead of
        billing one core for the whole burst.  The default mechanism is
        event-driven and needs no polling.
        """
        return None

    # -- results -------------------------------------------------------------------

    def thread_of(self, core: int) -> Optional[int]:
        """Thread currently placed on ``core`` (None for idle cores)."""
        return self._core_to_thread.get(core)

    @abc.abstractmethod
    def summary(self) -> dict:
        """Mechanism statistics (searches run, matches found, cycles spent)."""

    def reset(self) -> None:
        """Clear the matrix and statistics for a fresh detection run."""
        self.matrix = CommunicationMatrix(self.num_threads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "attached" if self._system is not None else "idle"
        return f"{type(self).__name__}(threads={self.num_threads}, {state})"
