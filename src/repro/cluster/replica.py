"""Cross-shard cache replication: entries, the router-side store, wire codec.

One :class:`ReplicaEntry` is everything a shard needs to serve a
canonical matrix warm without ever having solved it:

* ``key`` — the canonical cache key (routing key on the ring),
* ``canon_hex`` — the canonical matrix's exact float64 bytes (hex), so
  the receiving shard can also serve ``/map/delta`` against this key
  (the delta path needs the base *matrix*, not just the assignment),
* ``n`` / ``spec`` — thread count and ``(cores_per_l2, l2_per_chip,
  chips)`` topology shape,
* ``assignment`` — the solved canonical-order core assignment; any
  permutation's mapping is recovered client-side of the solve by
  :func:`repro.service.canonical.unpermute`.

The router observes a cold solve (a forwarded ``/map`` answered with
``X-Repro-Cache: miss``), constructs the entry from data it already has
(it canonicalized the body to route it), retains it in a bounded
:class:`ReplicaStore`, and fans it out to sibling shards as a
``POST /cache/push`` document rendered by :func:`render_push`.  A shard
applies a push by populating its solve cache and canonical-matrix cache
(:meth:`repro.service.app.MappingService.handle_cache_push`).  When a
dead shard is replaced, the router replays its whole store into the
fresh process — shard death loses no cached work.

The codec validates strictly and deterministically: documents render
with sorted keys and compact separators, so one store always produces
byte-identical push bodies.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump on incompatible wire changes; a shard rejects unknown versions.
PUSH_SCHEMA = 1


@dataclass(frozen=True)
class ReplicaEntry:
    """One replicated solve: canonical matrix + assignment under one key."""

    key: str
    canon_hex: str
    n: int
    spec: Tuple[int, int, int]
    assignment: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if len(self.assignment) != self.n:
            raise ValueError(
                f"assignment has {len(self.assignment)} entries for n={self.n}"
            )
        # float64 matrix bytes, hex-encoded: n*n*8 bytes, 2 chars each.
        expected = self.n * self.n * 16
        if len(self.canon_hex) != expected:
            raise ValueError(
                f"canon_hex has {len(self.canon_hex)} chars, expected {expected} "
                f"for an {self.n}x{self.n} float64 matrix"
            )

    def to_doc(self) -> Dict[str, Any]:
        """JSON-shaped form (the inverse of :meth:`from_doc`)."""
        return {
            "key": self.key,
            "canon": self.canon_hex,
            "n": self.n,
            "spec": list(self.spec),
            "assignment": list(self.assignment),
        }

    @classmethod
    def from_doc(cls, doc: Any) -> "ReplicaEntry":
        """Validate and decode one entry; raises :class:`ValueError`."""
        if not isinstance(doc, dict):
            raise ValueError("replica entry must be a JSON object")
        unknown = set(doc) - {"key", "canon", "n", "spec", "assignment"}
        if unknown:
            raise ValueError(f"unknown replica-entry field(s): {sorted(unknown)}")
        for field in ("key", "canon", "n", "spec", "assignment"):
            if field not in doc:
                raise ValueError(f"replica entry missing field {field!r}")
        key, canon = doc["key"], doc["canon"]
        if not isinstance(key, str) or not key:
            raise ValueError("replica-entry key must be a non-empty string")
        if not isinstance(canon, str):
            raise ValueError("replica-entry canon must be a hex string")
        try:
            bytes.fromhex(canon)
        except ValueError as exc:
            raise ValueError(f"replica-entry canon is not valid hex: {exc}") from exc
        n = doc["n"]
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            raise ValueError(f"replica-entry n must be a positive int, got {n!r}")
        spec = doc["spec"]
        if (
            not isinstance(spec, list)
            or len(spec) != 3
            or any(
                isinstance(v, bool) or not isinstance(v, int) or v < 1 for v in spec
            )
        ):
            raise ValueError(
                f"replica-entry spec must be three positive ints, got {spec!r}"
            )
        assignment = doc["assignment"]
        if not isinstance(assignment, list) or any(
            isinstance(c, bool) or not isinstance(c, int) or c < 0
            for c in assignment
        ):
            raise ValueError(
                "replica-entry assignment must be a list of non-negative ints"
            )
        return cls(
            key=key,
            canon_hex=canon,
            n=n,
            spec=(spec[0], spec[1], spec[2]),
            assignment=tuple(assignment),
        )


class ReplicaStore:
    """Bounded, insertion-ordered store of replicated solves.

    LRU-bounded like the shard caches but TTL-free: the store is the
    router's authority on "what the cluster has solved" for replay into
    replacement shards, and replaying a stale-but-correct solve is
    harmless (solves are pure functions of the canonical matrix).
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, ReplicaEntry]" = OrderedDict()
        self.evictions = 0

    def put(self, entry: ReplicaEntry) -> bool:
        """Retain ``entry``; returns True when it is new or changed.

        A duplicate (same key, same content) is a no-op returning False
        so the router's publish counter only counts fresh knowledge.
        """
        existing = self._entries.get(entry.key)
        if existing == entry:
            self._entries.move_to_end(entry.key)
            return False
        if existing is None and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        return True

    def get(self, key: str) -> Optional[ReplicaEntry]:
        """The entry under ``key``, or None."""
        return self._entries.get(key)

    def entries(self) -> Tuple[ReplicaEntry, ...]:
        """Every retained entry, least-recently-touched first."""
        return tuple(self._entries.values())

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def render_push(entries: Sequence[ReplicaEntry]) -> bytes:
    """A ``POST /cache/push`` body for ``entries`` (byte-deterministic)."""
    doc = {
        "schema": PUSH_SCHEMA,
        "entries": [entry.to_doc() for entry in entries],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def parse_push(body: bytes) -> List[ReplicaEntry]:
    """Decode and validate a push body; raises :class:`ValueError`."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"push body is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("push body must be a JSON object")
    unknown = set(doc) - {"schema", "entries"}
    if unknown:
        raise ValueError(f"unknown push field(s): {sorted(unknown)}")
    if doc.get("schema") != PUSH_SCHEMA:
        raise ValueError(
            f"unsupported push schema {doc.get('schema')!r}, expected {PUSH_SCHEMA}"
        )
    raw = doc.get("entries")
    if not isinstance(raw, list):
        raise ValueError("push 'entries' must be a list")
    return [ReplicaEntry.from_doc(item) for item in raw]
