"""Consistent-hash ring with virtual nodes.

The router places every shard at :attr:`HashRing.vnodes` pseudo-random
points on a 64-bit ring (SHA-256 of ``"<shard>#<replica>"``) and routes
a key to the owner of the first point at or clockwise-after the key's
own hash.  Virtual nodes smooth the load split; the classic consistency
property holds exactly: adding a shard only *steals* keys (every
remapped key moves **to** the new shard), removing one only *releases*
keys (every remapped key moves **off** the removed shard), so a
membership change disturbs ~``K/N`` of ``K`` keys instead of rehashing
everything.

Keys are hashed in a distinct namespace (``"key:"`` prefix) from vnode
labels so a shard name can never collide with a routing key by
construction.  Everything here is pure and deterministic — two routers
built with the same membership route identically, which is what lets a
restarted router (or a bench generator reading ``GET /ring``) agree
with the live one.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple


def _point(label: str) -> int:
    """Position of ``label`` on the 64-bit ring (SHA-256 derived)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Shard membership plus deterministic key → shard routing."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: Membership-change counter; bumped by :meth:`add` / :meth:`remove`
        #: so clients holding a cached ``GET /ring`` snapshot can detect
        #: staleness cheaply.
        self.version = 0
        self._members: Dict[str, Tuple[int, ...]] = {}
        # Sorted (point, shard_id) pairs; the tuple ordering makes the
        # astronomically-unlikely point collision deterministic too.
        self._ring: List[Tuple[int, str]] = []

    # -- membership --------------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        """Current members, sorted by shard id."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._members

    def add(self, shard_id: str) -> None:
        """Join ``shard_id`` (idempotent); bumps :attr:`version` when new."""
        if shard_id in self._members:
            return
        points = tuple(
            _point(f"{shard_id}#{i}") for i in range(self.vnodes)
        )
        self._members[shard_id] = points
        for p in points:
            bisect.insort(self._ring, (p, shard_id))
        self.version += 1

    def remove(self, shard_id: str) -> None:
        """Leave ``shard_id`` (idempotent); bumps :attr:`version` when present."""
        if shard_id not in self._members:
            return
        del self._members[shard_id]
        self._ring = [(p, s) for p, s in self._ring if s != shard_id]
        self.version += 1

    # -- routing -----------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The shard owning ``key``; raises :class:`LookupError` when empty."""
        if not self._ring:
            raise LookupError("hash ring has no members")
        idx = bisect.bisect_right(self._ring, (_point("key:" + key), "\U0010ffff"))
        if idx == len(self._ring):
            idx = 0  # wrap: the first point clockwise from 2**64
        return self._ring[idx][1]

    def lookup_chain(self, key: str) -> List[str]:
        """Every shard in preference order for ``key``.

        The first element is :meth:`lookup`'s answer; the rest are the
        distinct owners encountered walking the ring clockwise — the
        deterministic failover order the router retries dead shards
        through.
        """
        if not self._ring:
            return []
        start = bisect.bisect_right(self._ring, (_point("key:" + key), "\U0010ffff"))
        chain: List[str] = []
        seen = set()
        for offset in range(len(self._ring)):
            _, shard_id = self._ring[(start + offset) % len(self._ring)]
            if shard_id not in seen:
                seen.add(shard_id)
                chain.append(shard_id)
                if len(chain) == len(self._members):
                    break
        return chain
