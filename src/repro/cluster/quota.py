"""Per-tenant admission quotas: token buckets with an injected clock.

The router keys a :class:`TokenBucket` on each distinct ``X-Tenant``
header value (absent → ``"anonymous"``).  A bucket refills continuously
at ``rate`` tokens per second up to ``burst``; a request that cannot
afford its cost is throttled with the exact seconds-until-affordable,
which the router surfaces as ``429`` + ``Retry-After``.

Like every time-shaped component in this repo the clock is *injected*
(``time.monotonic`` as an uncalled default argument) — the module never
reads wall time itself, so quota behavior is deterministic under the
test suite's fake clocks (RPL002).

The tenant table is bounded: beyond ``max_tenants`` distinct tenants the
least-recently-seen bucket is dropped (it re-admits at full burst on
return — the cheap, safe failure mode for an admission control that must
never itself become a memory leak under tenant-id churn).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Callable, Tuple

#: Tenant bucket for requests that carry no ``X-Tenant`` header.
DEFAULT_TENANT = "anonymous"


class TokenBucket:
    """One tenant's continuously-refilling admission budget."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be a positive finite number, got {rate!r}")
        if burst < 1 or not math.isfinite(burst):
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()

    def admit(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to spend ``cost`` tokens.

        Returns ``(True, 0.0)`` on admission, else ``(False,
        retry_after_seconds)`` where the delay is exactly how long the
        bucket needs to refill enough for this cost.
        """
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        return False, (cost - self._tokens) / self.rate


class TenantQuotas:
    """Bounded map of tenant id → :class:`TokenBucket`.

    ``rate <= 0`` disables quotas entirely (every request admitted) —
    the default for benches and tests that are not exercising admission
    control.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
        max_tenants: int = 1024,
    ):
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self.enabled = rate > 0
        self.rate = float(rate)
        #: Unset/zero burst defaults to one second's worth of tokens
        #: (but at least 1, so a tiny rate still admits single requests).
        self.burst = float(burst) if burst > 0 else max(1.0, self.rate)
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        #: Tenants dropped by the LRU bound (monitoring honesty: a drop
        #: resets that tenant's budget to full burst).
        self.evictions = 0

    def admit(self, tenant: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Admission verdict for one request from ``tenant``.

        Returns ``(admitted, retry_after_seconds)``; always admits when
        quotas are disabled.
        """
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = bucket
            if len(self._buckets) > self.max_tenants:
                self._buckets.popitem(last=False)
                self.evictions += 1
        else:
            self._buckets.move_to_end(tenant)
        return bucket.admit(cost)

    def __len__(self) -> int:
        return len(self._buckets)

    def tenants(self) -> Tuple[str, ...]:
        """Currently-tracked tenant ids, least-recently-seen first."""
        return tuple(self._buckets)
