"""End-to-end cluster smoke: boot ``repro route``, kill a shard, drain.

Run via ``make cluster-smoke`` (wired into ``make ci``) or directly::

    PYTHONPATH=src python -m repro.cluster.smoke

Boots the real router as a subprocess on an ephemeral port with two
shard children and a fault plan that kills the forward target on the
third ``/map`` routing attempt.  The sequence pins the tentpole
contracts:

1. a cold solve is replicated to the sibling shard
   (``replication_publish_total`` / ``replication_push_total``);
2. the injected shard death re-routes via the ring and the settled
   response is **byte-identical** to the pre-kill one (shard answers
   are pure functions of the body, and the sibling is warm);
3. the dead shard is restarted with the replica store replayed and
   ``/healthz`` returns to ``ok``;
4. SIGTERM drains the router *and* both shard children cleanly
   (exit 0, no orphan processes).

Exit status is 0 on success — the CI contract.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.faults.plan import SITE_CLUSTER_FORWARD, FaultEvent, FaultPlan
from repro.service.client import AsyncMappingClient
from repro.service.smoke import _SMOKE_MATRIX

_LISTEN_RE = re.compile(r"router listening on http://([0-9.]+):(\d+)")

#: Boot lines scanned for the router announcement (fault-plan banner and
#: per-shard endpoint lines surround it).
_MAX_BOOT_LINES = 20

#: Kill the forward target on the third routed request: request 1 is the
#: cold solve (replicated), request 2 proves the warm path, request 3
#: dies mid-route and must settle identically on the sibling.
_KILL_PLAN = FaultPlan(
    seed=2012,
    events=(FaultEvent(site=SITE_CLUSTER_FORWARD, invocation=3, kind="crash"),),
    note="cluster-smoke: kill the forward target on request 3",
)


def _router_command(plan_path: str) -> List[str]:
    return [
        sys.executable, "-m", "repro", "route",
        "--host", "127.0.0.1", "--port", "0", "--shards", "2",
        "--workers-per-shard", "0",
        "--fault-plan", plan_path,
    ]


def _router_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _counters(text: str) -> Dict[str, int]:
    """Integer ``repro_cluster_*`` rows from a /metrics exposition."""
    out: Dict[str, int] = {}
    for line in text.splitlines():
        if not line.startswith("repro_cluster_") or "{" in line:
            continue
        name, _, value = line.partition(" ")
        try:
            out[name] = int(value)
        except ValueError:
            continue
    return out


async def _exercise(port: int) -> None:
    async with AsyncMappingClient("127.0.0.1", port) as client:
        body = json.dumps(
            {"matrix": _SMOKE_MATRIX}, sort_keys=True
        ).encode("utf-8")

        # 1. Cold solve: replicated to the sibling before returning.
        status, headers, first = await asyncio.wait_for(
            client.request("POST", "/map", body), timeout=60
        )
        assert status == 200, (status, first[:200])
        assert headers.get("x-repro-cache") == "miss", headers
        solver = headers.get("x-repro-shard")
        assert solver, headers

        # 2. Same body again: warm, same shard, byte-identical.
        status, headers, warm = await asyncio.wait_for(
            client.request("POST", "/map", body), timeout=30
        )
        assert status == 200 and warm == first
        assert headers.get("x-repro-shard") == solver, headers

        # 3. The injected crash kills the solver mid-route; the sibling
        #    (warmed by replication) settles the request byte-identically.
        status, headers, settled = await asyncio.wait_for(
            client.request("POST", "/map", body), timeout=60
        )
        assert status == 200, (status, settled[:200])
        survivor = headers.get("x-repro-shard")
        assert survivor and survivor != solver, (solver, headers)
        assert settled == first, "settled response must be byte-identical"

        # 4. Exact fault/replication counters.
        status, _, raw = await asyncio.wait_for(
            client.request("GET", "/metrics"), timeout=30
        )
        assert status == 200
        counters = _counters(raw.decode("utf-8"))
        expected = {
            "repro_cluster_shard_kills_total": 1,
            "repro_cluster_shard_down_total": 1,
            "repro_cluster_reroutes_total": 1,
            "repro_cluster_replication_publish_total": 1,
            "repro_cluster_replication_push_total": 1,
            "repro_cluster_faults_injected_total": 1,
            "repro_cluster_quota_throttled_total": 0,
            "repro_cluster_unroutable_total": 0,
        }
        for name, value in expected.items():
            assert counters.get(name) == value, (name, counters.get(name))

        # 5. The dead shard comes back (replica store replayed) and the
        #    cluster reports healthy again.
        for _ in range(150):
            status, _, raw = await client.request("GET", "/healthz")
            if status == 200 and json.loads(raw)["status"] == "ok":
                break
            await asyncio.sleep(0.2)
        else:
            raise AssertionError("cluster never returned to ok after restart")
        status, _, raw = await asyncio.wait_for(
            client.request("GET", "/metrics"), timeout=30
        )
        counters = _counters(raw.decode("utf-8"))
        assert counters.get("repro_cluster_shard_restarts_total") == 1, counters
        assert counters.get("repro_cluster_replication_replay_total") == 1, counters
        assert counters.get("repro_cluster_shards_up") == 2, counters


def main(timeout: float = 120.0) -> int:
    """Run the cluster smoke sequence; returns a process exit code."""
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        plan_path = os.path.join(tmp, "plan.json")
        _KILL_PLAN.save(plan_path)
        proc = subprocess.Popen(
            _router_command(plan_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=_router_env(),
            text=True,
        )
        port: Optional[int] = None
        try:
            assert proc.stdout is not None
            banner: List[str] = []
            for _ in range(_MAX_BOOT_LINES):
                line = proc.stdout.readline()
                if not line:
                    break
                banner.append(line)
                match = _LISTEN_RE.search(line)
                if match:
                    port = int(match.group(2))
                    break
            if port is None:
                proc.kill()
                print(
                    "cluster-smoke: router did not announce a port:\n"
                    + "".join(banner)
                )
                return 1
            asyncio.run(_exercise(port))
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=timeout)
            if code != 0:
                print(f"cluster-smoke: router exited {code} after SIGTERM")
                return 1
            print(
                f"cluster-smoke: OK (port {port}, shard killed and "
                "re-routed byte-identically, clean SIGTERM drain)"
            )
            return 0
        except Exception as exc:  # noqa: BLE001 — report, kill, fail the gate
            print(f"cluster-smoke: FAILED: {type(exc).__name__}: {exc}")
            proc.kill()
            return 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
