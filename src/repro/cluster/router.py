"""The cluster front end: consistent-hash routing over supervised shards.

:class:`ClusterRouter` is the app behind ``repro route``.  It duck-types
the surface :class:`~repro.service.http.MappingServer` drives (config /
metrics / clock / ``start`` / ``aclose``), so :class:`RouterServer` is
the same battle-tested HTTP loop with only the routing table swapped.

Request path for ``POST /map``:

1. **Tenant admission** — token bucket per ``X-Tenant`` header
   (:mod:`repro.cluster.quota`); exhaustion is ``429`` + ``Retry-After``
   before any routing work is spent.
2. **Canonical routing key** — the router canonicalizes the matrix with
   the *same* :mod:`repro.service.canonical` code the shards use, so
   permutation-equivalent requests hash to the same ring position and
   land on the shard whose caches are already warm.  A bounded body→key
   cache makes repeats a dict lookup; unparsable bodies fall back to a
   body-hash key (the shard answers the 400 — validation stays
   single-sourced).
3. **Forward via the ring** — the first live shard in
   :meth:`~repro.cluster.ring.HashRing.lookup_chain` order gets the
   request over a pooled keep-alive client.  A dead shard (refused /
   reset connection, or an injected ``crash`` at
   :data:`~repro.faults.plan.SITE_CLUSTER_FORWARD`) is marked down,
   scheduled for restart, and the request re-routes to the next shard —
   the client sees one answer either way, byte-identical because shard
   responses are pure functions of the body.
4. **Replication** — a forwarded ``/map`` answered ``X-Repro-Cache:
   miss`` is a cold solve the rest of the cluster does not have: the
   router retains it in its :class:`~repro.cluster.replica.ReplicaStore`
   and pushes it to every sibling (seeded-deterministic fan-out order)
   so the next request for any permutation of that matrix is warm on
   every shard.  Restarted shards get the whole store replayed before
   rejoining.

``POST /map/delta`` routes on the request's ``base_key`` — the delta
follows the shard that holds (or was pushed) its base matrix, keeping
online-remap sessions affine under sharding and across ring changes.

``GET /healthz`` reports ``ok`` / ``degraded`` plus per-shard states;
``GET /metrics`` aggregates every live shard's integer counters under
their ``repro_service_`` names and appends the router's own
``repro_cluster_`` registry (including per-tenant counters);
``GET /ring`` exposes the membership snapshot smart clients (the bench
load rig) use to drive shards directly.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.quota import DEFAULT_TENANT, TenantQuotas
from repro.cluster.replica import ReplicaEntry, ReplicaStore, render_push
from repro.cluster.ring import HashRing
from repro.cluster.shards import (
    ShardSupervisor,
    SubprocessShardSupervisor,
)
from repro.faults.injector import InjectedCrash, get_injector
from repro.faults.plan import SITE_CLUSTER_FORWARD
from repro.obs.context import TRACE_HEADER, TraceContext
from repro.obs.export import chrome_trace, render_chrome_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.stitch import stitch_cluster_trace
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.app import Response, _error_body
from repro.service.cache import LRUTTLCache
from repro.service.canonical import canonical_form, canonical_key
from repro.service.client import AsyncMappingClient
from repro.service.http import MappingServer, _Request
from repro.service.metrics import _MetricAttr
from repro.util.rng import derive_seed

_JSON_SEPARATORS = (",", ":")

#: Transport failures that mean "this shard is gone, re-route".
_SHARD_DEAD_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    asyncio.IncompleteReadError,
)


@dataclass(frozen=True)
class RouterConfig:
    """Tunables for one router instance (all read at start-up)."""

    host: str = "127.0.0.1"
    port: int = 8797
    #: Shard subprocesses to spawn and supervise.
    shards: int = 2
    #: Virtual nodes per shard on the hash ring.
    vnodes: int = 64
    #: Solver pool size handed to each shard (0 = in-process thread).
    workers_per_shard: int = 1
    #: Cache sizing forwarded to each shard.
    cache_entries: int = 4096
    cache_ttl: float = 300.0
    max_body_bytes: int = 8 * 1024 * 1024
    #: Seconds the router waits for in-flight requests on shutdown.
    drain_timeout: float = 10.0
    #: Per-tenant admission rate in requests/second (<= 0 disables).
    quota_rate: float = 0.0
    #: Bucket depth; 0 defaults to one second's worth of tokens.
    quota_burst: float = 0.0
    #: Distinct tenants tracked before LRU eviction.
    quota_max_tenants: int = 1024
    #: Replicated solves retained for fan-out and restart replay.
    replica_entries: int = 4096
    #: Body→routing-key cache entries.
    route_cache_entries: int = 4096
    #: Same thread/core ceilings the shards enforce; the router skips
    #: canonicalizing bodies that would be rejected anyway.
    max_threads: int = 256
    max_cores: int = 1024
    #: Seed anchoring the deterministic replication fan-out order.
    seed: int = 0
    #: Automatically restart shards that die (replaying the replica
    #: store into the replacement); disable for kill-only tests.
    restart_dead_shards: bool = True
    #: Router span-ring capacity (0 disables router tracing).
    trace_ring: int = 65536
    #: Deterministic 1-in-N span sampling (1 keeps everything).
    trace_sample_every: int = 1
    #: Use the tracer's deterministic step clock instead of the injected
    #: monotonic clock — trades real latencies for byte-identical
    #: ``GET /trace`` exports; forwarded to every spawned shard.
    trace_step_clock: bool = False


#: ``repro_cluster_`` families in render order.
_ROUTER_ROWS: Tuple[Tuple[str, str], ...] = (
    ("requests_total", "counter"),
    ("routed_total", "counter"),
    ("reroutes_total", "counter"),
    ("unroutable_total", "counter"),
    ("quota_throttled_total", "counter"),
    ("shard_down_total", "counter"),
    ("shard_kills_total", "counter"),
    ("shard_restarts_total", "counter"),
    ("restart_failures_total", "counter"),
    ("replication_publish_total", "counter"),
    ("replication_push_total", "counter"),
    ("replication_push_failures_total", "counter"),
    ("replication_replay_total", "counter"),
    ("faults_injected_total", "counter"),
    ("http_errors_total", "counter"),
    ("connection_resets_total", "counter"),
    ("shards_up", "gauge"),
    ("inflight", "gauge"),
    # Tracing counters (PR 10): spans recorded / sampled out by the
    # router's own tracer plus its per-stage breakdown.  Appended after
    # the historical rows so pinned row prefixes are unchanged.
    ("trace_spans_total", "counter"),
    ("trace_sampled_out_total", "counter"),
    ("trace_stage_route_total", "counter"),
    ("trace_stage_ring_lookup_total", "counter"),
    ("trace_stage_forward_total", "counter"),
    ("trace_stage_replicate_total", "counter"),
)

#: Distinct tenant label values tracked before folding into ``~other``
#: (label-cardinality guard on the exposition).
_MAX_TENANT_LABELS = 256


class RouterMetrics:
    """Router counter set (``repro_cluster_`` prefix, per-tenant labels)."""

    requests_total = _MetricAttr("requests_total", "counter")
    routed_total = _MetricAttr("routed_total", "counter")
    reroutes_total = _MetricAttr("reroutes_total", "counter")
    unroutable_total = _MetricAttr("unroutable_total", "counter")
    quota_throttled_total = _MetricAttr("quota_throttled_total", "counter")
    shard_down_total = _MetricAttr("shard_down_total", "counter")
    shard_kills_total = _MetricAttr("shard_kills_total", "counter")
    shard_restarts_total = _MetricAttr("shard_restarts_total", "counter")
    restart_failures_total = _MetricAttr("restart_failures_total", "counter")
    replication_publish_total = _MetricAttr("replication_publish_total", "counter")
    replication_push_total = _MetricAttr("replication_push_total", "counter")
    replication_push_failures_total = _MetricAttr(
        "replication_push_failures_total", "counter"
    )
    replication_replay_total = _MetricAttr("replication_replay_total", "counter")
    faults_injected_total = _MetricAttr("faults_injected_total", "counter")
    http_errors_total = _MetricAttr("http_errors_total", "counter")
    connection_resets_total = _MetricAttr("connection_resets_total", "counter")
    shards_up = _MetricAttr("shards_up", "gauge")
    inflight = _MetricAttr("inflight", "gauge")
    trace_spans_total = _MetricAttr("trace_spans_total", "counter")
    trace_sampled_out_total = _MetricAttr("trace_sampled_out_total", "counter")
    trace_stage_route_total = _MetricAttr("trace_stage_route_total", "counter")
    trace_stage_ring_lookup_total = _MetricAttr(
        "trace_stage_ring_lookup_total", "counter"
    )
    trace_stage_forward_total = _MetricAttr("trace_stage_forward_total", "counter")
    trace_stage_replicate_total = _MetricAttr(
        "trace_stage_replicate_total", "counter"
    )

    def __init__(self, latency_window: int = 2048):
        self.registry = MetricsRegistry(prefix="repro_cluster_")
        self._series = {
            name: (
                self.registry.counter(name)
                if kind == "counter"
                else self.registry.gauge(name)
            )
            for name, kind in _ROUTER_ROWS
        }
        self._latency_ms = self.registry.histogram(
            "latency_ms", window=latency_window
        )
        self.registry.callback_gauge(
            "latency_p50_ms", lambda: self._latency_ms.quantile(0.50, default=0.0)
        )
        self.registry.callback_gauge(
            "latency_p99_ms", lambda: self._latency_ms.quantile(0.99, default=0.0)
        )
        self._tenant_labels: Set[str] = set()

    def observe_latency_ms(self, value: float) -> None:
        """Record one routed-request latency."""
        self._latency_ms.observe(value)

    def _tenant_label(self, tenant: str) -> str:
        if tenant in self._tenant_labels:
            return tenant
        if len(self._tenant_labels) >= _MAX_TENANT_LABELS:
            return "~other"
        self._tenant_labels.add(tenant)
        return tenant

    def tenant_request(self, tenant: str) -> None:
        """Count one admission attempt for ``tenant``."""
        label = self._tenant_label(tenant)
        self.registry.counter(
            "tenant_requests_total", labels={"tenant": label}
        ).inc()

    def tenant_throttled(self, tenant: str) -> None:
        """Count one quota rejection for ``tenant``."""
        label = self._tenant_label(tenant)
        self.registry.counter(
            "tenant_throttled_total", labels={"tenant": label}
        ).inc()

    def render(self) -> str:
        """The router's own exposition text."""
        return self.registry.render()


@dataclass(frozen=True)
class _RouteInfo:
    """Routing decision for one body: key plus publishable canon data."""

    key: str
    #: None when the body could not be canonicalized router-side (the
    #: shard will answer the 400; nothing will be published).
    canon_hex: Optional[str] = None
    n: int = 0
    spec: Tuple[int, int, int] = (0, 0, 0)
    perm: Tuple[int, ...] = ()


class _ShardClientPool:
    """Free-list of keep-alive clients for one shard incarnation.

    One :class:`AsyncMappingClient` serves one request at a time (the
    wire protocol is strictly request→response on a single socket), so
    concurrent forwards each acquire their own client; released clients
    are reused by later requests.  All bookkeeping is synchronous — no
    await between check and act (RPL102).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._free: List[AsyncMappingClient] = []

    def acquire(self) -> AsyncMappingClient:
        if self._free:
            return self._free.pop()
        return AsyncMappingClient(self.host, self.port)

    def release(self, client: AsyncMappingClient) -> None:
        self._free.append(client)

    async def close(self) -> None:
        free, self._free = self._free, []
        for client in free:
            await client.close()


class ClusterRouter:
    """The sharded front-end app (see module docstring)."""

    def __init__(
        self,
        config: Optional[RouterConfig] = None,
        supervisor: Optional[ShardSupervisor] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or RouterConfig()
        self.clock = clock
        cfg = self.config
        self.metrics = RouterMetrics()
        #: Router-side span ring; ``trace_step_clock`` swaps the injected
        #: monotonic clock for the deterministic step counter so two runs
        #: of one plan export byte-identical stitched traces.
        self.tracer: Tracer
        if cfg.trace_ring > 0:
            self.tracer = Tracer(
                trace_id="router",
                wall_clock=None if cfg.trace_step_clock else clock,
                capacity=cfg.trace_ring,
                sample_every=cfg.trace_sample_every,
            )
        else:
            self.tracer = NULL_TRACER
        self.ring = HashRing(vnodes=cfg.vnodes)
        self.quotas = TenantQuotas(
            rate=cfg.quota_rate,
            burst=cfg.quota_burst,
            clock=clock,
            max_tenants=cfg.quota_max_tenants,
        )
        self.replicas = ReplicaStore(max_entries=cfg.replica_entries)
        self.supervisor: ShardSupervisor = supervisor or SubprocessShardSupervisor(
            shards=cfg.shards,
            host=cfg.host,
            workers_per_shard=cfg.workers_per_shard,
            cache_entries=cfg.cache_entries,
            cache_ttl=cfg.cache_ttl,
            clock=clock,
            trace_sample_every=cfg.trace_sample_every,
            trace_step_clock=cfg.trace_step_clock,
        )
        self._endpoints: Dict[str, Tuple[str, int]] = {}
        self._pools: Dict[str, _ShardClientPool] = {}
        self._down: Set[str] = set()
        self._restarting: Set[str] = set()
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._route_cache: LRUTTLCache[_RouteInfo] = LRUTTLCache(
            cfg.route_cache_entries, cfg.cache_ttl, clock
        )
        self._closing = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Boot every shard and build the ring (idempotent)."""
        # Claim the start synchronously: a second start() arriving while
        # the supervisor is still booting must not spawn a second fleet.
        if self._started:
            return
        self._started = True
        self._endpoints = await self.supervisor.start_all()
        for shard_id in sorted(self._endpoints):
            self.ring.add(shard_id)
        self.metrics.shards_up = len(self._endpoints)

    async def aclose(self) -> None:
        """Cancel restarts, close client pools, stop every shard."""
        self._closing = True
        tasks, self._tasks = set(self._tasks), set()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        pools, self._pools = dict(self._pools), {}
        for pool in pools.values():
            await pool.close()
        await self.supervisor.stop_all()

    # -- shard I/O ---------------------------------------------------------------

    def _pool(self, shard_id: str) -> _ShardClientPool:
        pool = self._pools.get(shard_id)
        if pool is None:
            host, port = self._endpoints[shard_id]
            pool = self._pools[shard_id] = _ShardClientPool(host, port)
        return pool

    async def _shard_request(
        self,
        shard_id: str,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One pooled round trip to ``shard_id``; dead clients are dropped."""
        pool = self._pool(shard_id)
        client = pool.acquire()
        try:
            result = await client.request(method, path, body, headers=headers)
        except BaseException:
            await client.close()
            raise
        if self._pools.get(shard_id) is pool:
            pool.release(client)
        else:
            # The shard died and restarted while this exchange was in
            # flight; its pool was replaced, so retire the old socket.
            await client.close()
        return result

    async def _shard_died(self, shard_id: str, kill: bool) -> None:
        """Mark a shard down and (optionally) schedule its replacement."""
        if kill:
            await self.supervisor.kill(shard_id)
        if shard_id in self._down:
            return
        self._down.add(shard_id)
        self.metrics.shard_down_total += 1
        self.metrics.shards_up = len(self._endpoints) - len(self._down)
        pool = self._pools.pop(shard_id, None)
        if pool is not None:
            await pool.close()
        if (
            self.config.restart_dead_shards
            and not self._closing
            and shard_id not in self._restarting
        ):
            self._restarting.add(shard_id)
            task = asyncio.create_task(self._restart_shard(shard_id))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _restart_shard(self, shard_id: str) -> None:
        """Boot a replacement, replay the replica store, rejoin the ring."""
        try:
            try:
                endpoint = await self.supervisor.restart(shard_id)
            except (OSError, RuntimeError, asyncio.CancelledError):
                self.metrics.restart_failures_total += 1
                return
            self._endpoints[shard_id] = endpoint
            entries = self.replicas.entries()
            if entries:
                try:
                    status, _, _ = await self._shard_request(
                        shard_id, "POST", "/cache/push", render_push(entries)
                    )
                except _SHARD_DEAD_ERRORS + (OSError,):
                    status = 0
                if status == 200:
                    self.metrics.replication_replay_total += len(entries)
                else:
                    self.metrics.replication_push_failures_total += 1
            self._down.discard(shard_id)
            self.metrics.shard_restarts_total += 1
            self.metrics.shards_up = len(self._endpoints) - len(self._down)
        finally:
            self._restarting.discard(shard_id)

    # -- routing -----------------------------------------------------------------

    def _map_route_info(self, body: bytes) -> _RouteInfo:
        """Routing key (and publishable canon data) for a /map body."""
        body_key = "map\x00" + hashlib.sha256(body).hexdigest()
        cached = self._route_cache.get(body_key)
        if cached is not None:
            return cached
        info = self._canonicalize(body)
        if info is None:
            info = _RouteInfo(key="body:" + body_key)
        self._route_cache.put(body_key, info)
        return info

    def _canonicalize(self, body: bytes) -> Optional[_RouteInfo]:
        """Mirror the shard's parse→canonicalize steps; None on any doubt.

        Uses the exact :mod:`repro.service.canonical` code path so the
        router's key always equals the key the shard will answer with;
        anything that fails the cheap structural checks routes by body
        hash instead and lets the shard produce the authoritative 400.
        """
        cfg = self.config
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or "matrix" not in doc:
            return None
        topo = doc.get("topology", None)
        if topo is None:
            spec = (2, 2, 2)
        elif isinstance(topo, dict):
            values = []
            for fld in ("cores_per_l2", "l2_per_chip", "chips"):
                v = topo.get(fld, 2)
                if isinstance(v, bool) or not isinstance(v, int) or v < 1:
                    return None
                values.append(v)
            spec = (values[0], values[1], values[2])
        else:
            return None
        if spec[0] * spec[1] * spec[2] > cfg.max_cores:
            return None
        try:
            raw = np.asarray(doc["matrix"], dtype=np.float64)
        except (TypeError, ValueError):
            return None
        if raw.ndim != 2 or raw.shape[0] != raw.shape[1] or raw.shape[0] < 1:
            return None
        n = int(raw.shape[0])
        if n > cfg.max_threads or not bool(np.isfinite(raw).all()):
            return None
        canon, perm = canonical_form(raw)
        key = canonical_key(canon, spec)
        return _RouteInfo(
            key=key,
            canon_hex=canon.tobytes().hex(),
            n=n,
            spec=spec,
            perm=tuple(perm),
        )

    def _delta_route_key(self, body: bytes) -> str:
        """Routing key for a /map/delta body: its ``base_key`` field."""
        body_key = "delta\x00" + hashlib.sha256(body).hexdigest()
        cached = self._route_cache.get(body_key)
        if cached is not None:
            return cached.key
        try:
            doc = json.loads(body.decode("utf-8"))
            base_key = doc.get("base_key") if isinstance(doc, dict) else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            base_key = None
        key = base_key if isinstance(base_key, str) and base_key else (
            "body:" + body_key
        )
        self._route_cache.put(body_key, _RouteInfo(key=key))
        return key

    async def _forward(
        self, path: str, body: bytes, route_key: str, parent: int = 0
    ) -> Tuple[Optional[int], Dict[str, str], bytes, Optional[str]]:
        """Send ``body`` to the ring's preferred live shard, failing over.

        Returns ``(status, headers, raw, shard_id)``; status None means
        no shard could be reached.  An injected crash at
        :data:`SITE_CLUSTER_FORWARD` kills the *target* shard before the
        forward, exercising the death→re-route path deterministically.

        Each attempt gets its own ``forward`` span under ``parent``; the
        span's id travels to the shard in the ``X-Repro-Trace`` header so
        the shard's request subtree can be stitched back under it.
        """
        tracer = self.tracer
        injector = get_injector()
        attempt = 0
        for shard_id in self.ring.lookup_chain(route_key):
            if shard_id in self._down:
                continue
            attempt += 1
            if attempt > 1:
                self.metrics.reroutes_total += 1
            try:
                await injector.afire(SITE_CLUSTER_FORWARD)
            except InjectedCrash:
                self.metrics.shard_kills_total += 1
                await self._shard_died(shard_id, kill=True)
                continue
            span = tracer.begin(
                "forward",
                cat="cluster.stage",
                parent=parent,
                args={"shard": shard_id, "attempt": attempt},
                nest=False,
            )
            trace_headers: Optional[Dict[str, str]] = None
            if span.span_id > 0:
                ctx = TraceContext(
                    trace_id=tracer.trace_id, parent_span_id=span.span_id
                )
                trace_headers = {TRACE_HEADER: ctx.to_header()}
            try:
                status, headers, raw = await self._shard_request(
                    shard_id, "POST", path, body, headers=trace_headers
                )
            except _SHARD_DEAD_ERRORS:
                tracer.end(span, args={"status": 0})
                await self._shard_died(shard_id, kill=False)
                continue
            tracer.end(span, args={"status": status})
            self.metrics.routed_total += 1
            return status, headers, raw, shard_id
        self.metrics.unroutable_total += 1
        return None, {}, b"", None

    # -- request handling --------------------------------------------------------

    def _admit(self, tenant: str) -> Optional[Response]:
        """Quota gate: None when admitted, else the 429 response."""
        self.metrics.tenant_request(tenant)
        allowed, retry_after = self.quotas.admit(tenant)
        if allowed:
            return None
        self.metrics.quota_throttled_total += 1
        self.metrics.tenant_throttled(tenant)
        headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        return 429, headers, _error_body(
            "QuotaExceeded",
            f"tenant {tenant!r} is over its admission rate; "
            f"retry in {retry_after:.3f}s",
        )

    @staticmethod
    def _proxy_headers(headers: Dict[str, str], shard_id: str) -> Dict[str, str]:
        """Response headers forwarded to the client, plus the shard tag."""
        out: Dict[str, str] = {}
        cache = headers.get("x-repro-cache")
        if cache is not None:
            out["X-Repro-Cache"] = cache
        retry = headers.get("retry-after")
        if retry is not None:
            out["Retry-After"] = retry
        out["X-Repro-Shard"] = shard_id
        return out

    async def handle_map(self, body: bytes, tenant: str = DEFAULT_TENANT) -> Response:
        """Route one ``POST /map`` body through the cluster."""
        tracer = self.tracer
        span = tracer.begin(
            "route",
            cat="cluster.request",
            args={"path": "/map", "bytes": len(body)},
            nest=False,
        )
        status_code = 0
        try:
            throttled = self._admit(tenant)
            if throttled is not None:
                status_code = throttled[0]
                return throttled
            lspan = tracer.begin(
                "ring.lookup",
                cat="cluster.stage",
                parent=span.span_id,
                nest=False,
            )
            route = self._map_route_info(body)
            tracer.end(lspan, args={"key_kind": route.key.partition(":")[0]})
            status, headers, raw, shard_id = await self._forward(
                "/map", body, route.key, parent=span.span_id
            )
            if status is None or shard_id is None:
                status_code = 503
                return 503, {"Retry-After": "1"}, _error_body(
                    "NoShardsAvailable", "every shard is down or restarting"
                )
            status_code = status
            if status == 200 and headers.get("x-repro-cache") == "miss":
                rspan = tracer.begin(
                    "replicate",
                    cat="cluster.stage",
                    parent=span.span_id,
                    nest=False,
                )
                try:
                    await self._publish(route, raw, shard_id)
                finally:
                    tracer.end(rspan)
            return status, self._proxy_headers(headers, shard_id), raw
        finally:
            tracer.end(span, args={"status": status_code})

    async def handle_delta(
        self, body: bytes, tenant: str = DEFAULT_TENANT
    ) -> Response:
        """Route one ``POST /map/delta`` body by its base key."""
        tracer = self.tracer
        span = tracer.begin(
            "route",
            cat="cluster.request",
            args={"path": "/map/delta", "bytes": len(body)},
            nest=False,
        )
        status_code = 0
        try:
            throttled = self._admit(tenant)
            if throttled is not None:
                status_code = throttled[0]
                return throttled
            lspan = tracer.begin(
                "ring.lookup",
                cat="cluster.stage",
                parent=span.span_id,
                nest=False,
            )
            route_key = self._delta_route_key(body)
            tracer.end(lspan, args={"key_kind": route_key.partition(":")[0]})
            status, headers, raw, shard_id = await self._forward(
                "/map/delta", body, route_key, parent=span.span_id
            )
            if status is None or shard_id is None:
                status_code = 503
                return 503, {"Retry-After": "1"}, _error_body(
                    "NoShardsAvailable", "every shard is down or restarting"
                )
            status_code = status
            return status, self._proxy_headers(headers, shard_id), raw
        finally:
            tracer.end(span, args={"status": status_code})

    async def _publish(self, route: _RouteInfo, raw: bytes, solver: str) -> None:
        """Retain a cold solve and fan it out to every sibling shard."""
        if route.canon_hex is None:
            return
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("key") != route.key:
            return  # defensive: never publish under a mismatched key
        mapping = payload.get("mapping")
        perm = payload.get("perm")
        if (
            not isinstance(mapping, list)
            or not isinstance(perm, list)
            or len(mapping) != route.n
            or len(perm) != route.n
        ):
            return
        assignment = tuple(int(mapping[perm[c]]) for c in range(route.n))
        entry = ReplicaEntry(
            key=route.key,
            canon_hex=route.canon_hex,
            n=route.n,
            spec=route.spec,
            assignment=assignment,
        )
        if not self.replicas.put(entry):
            return  # already cluster-known: nothing new to fan out
        self.metrics.replication_publish_total += 1
        siblings = [
            s for s in self.ring.shards if s != solver and s not in self._down
        ]
        if not siblings:
            return
        # Seeded-deterministic fan-out order: a rotation of the sorted
        # sibling list anchored on (seed, key), so two runs of one plan
        # push in the same order without always favoring shard-0.
        rotation = derive_seed(self.config.seed, "replication-fanout", entry.key)
        start = rotation % len(siblings)
        push_body = render_push([entry])
        for sibling in siblings[start:] + siblings[:start]:
            try:
                status, _, _ = await self._shard_request(
                    sibling, "POST", "/cache/push", push_body
                )
            except _SHARD_DEAD_ERRORS:
                self.metrics.replication_push_failures_total += 1
                continue
            if status == 200:
                self.metrics.replication_push_total += 1
            else:
                self.metrics.replication_push_failures_total += 1

    # -- introspection endpoints -------------------------------------------------

    def shard_states(self) -> Dict[str, str]:
        """``{shard_id: "up" | "restarting" | "down"}`` for every member."""
        states: Dict[str, str] = {}
        for shard_id in self.ring.shards:
            if shard_id in self._restarting:
                states[shard_id] = "restarting"
            elif shard_id in self._down:
                states[shard_id] = "down"
            else:
                states[shard_id] = "up"
        return states

    def healthz(self) -> Response:
        """Cluster liveness: ``ok`` when every shard is up, else degraded."""
        states = self.shard_states()
        degraded = [s for s, state in states.items() if state != "up"]
        payload = {
            "status": "degraded" if degraded else "ok",
            "shards": states,
            "ring_version": self.ring.version,
            "replica_entries": len(self.replicas),
            "tenants": len(self.quotas),
        }
        body = json.dumps(payload, sort_keys=True, separators=_JSON_SEPARATORS)
        status = 200 if not degraded else 503
        return status, {}, body.encode("utf-8")

    def render_ring(self) -> Response:
        """``GET /ring``: the membership snapshot smart clients route by."""
        states = self.shard_states()
        shards = {}
        for shard_id in self.ring.shards:
            host, port = self._endpoints.get(shard_id, ("", 0))
            shards[shard_id] = {
                "host": host,
                "port": port,
                "state": states[shard_id],
            }
        payload = {
            "vnodes": self.ring.vnodes,
            "version": self.ring.version,
            "shards": shards,
        }
        body = json.dumps(payload, sort_keys=True, separators=_JSON_SEPARATORS)
        return 200, {}, body.encode("utf-8")

    async def render_metrics(self) -> Response:
        """Cluster ``GET /metrics``: summed shard counters + router rows.

        Every live shard's exposition is scraped and its *integer*,
        label-free ``repro_service_`` rows are summed into one combined
        section (float gauges like latency quantiles are per-shard
        quantities that do not sum; they stay on the shards' own
        endpoints).  The router's ``repro_cluster_`` registry — with the
        per-tenant series — renders after it.
        """
        self.metrics.shards_up = len(self._endpoints) - len(self._down)
        self.metrics.faults_injected_total = get_injector().fired_total()
        tracer = self.tracer
        stages = tracer.stage_counts
        self.metrics.trace_spans_total = tracer.started_total
        self.metrics.trace_sampled_out_total = tracer.sampled_out_total
        self.metrics.trace_stage_route_total = stages.get("route", 0)
        self.metrics.trace_stage_ring_lookup_total = stages.get("ring.lookup", 0)
        self.metrics.trace_stage_forward_total = stages.get("forward", 0)
        self.metrics.trace_stage_replicate_total = stages.get("replicate", 0)
        order: List[str] = []
        kinds: Dict[str, str] = {}
        sums: Dict[str, int] = {}
        scraped = 0
        for shard_id in self.ring.shards:
            if shard_id in self._down:
                continue
            try:
                status, _, raw = await self._shard_request(
                    shard_id, "GET", "/metrics"
                )
            except _SHARD_DEAD_ERRORS:
                await self._shard_died(shard_id, kill=False)
                continue
            if status != 200:
                continue
            scraped += 1
            self._fold_exposition(raw.decode("utf-8"), order, kinds, sums)
        lines = [f"# aggregated from {scraped} shard(s)"]
        for name in order:
            lines.append(f"# TYPE {name} {kinds[name]}")
            lines.append(f"{name} {sums[name]}")
        text = "\n".join(lines) + "\n" + self.metrics.render()
        return 200, {"Content-Type": "text/plain; charset=utf-8"}, text.encode(
            "utf-8"
        )

    async def render_trace(self) -> Response:
        """Cluster ``GET /trace``: every live shard's ring stitched under
        the router's, one Chrome-trace document (see
        :mod:`repro.obs.stitch`).  Down shards are skipped — the merge
        covers whatever the cluster can currently answer for."""
        router_doc = chrome_trace(
            self.tracer.snapshot(),
            trace_id=self.tracer.trace_id,
            clock=self.tracer.clock,
        )
        shard_docs: Dict[str, Dict[str, Any]] = {}
        for shard_id in self.ring.shards:
            if shard_id in self._down:
                continue
            try:
                status, _, raw = await self._shard_request(
                    shard_id, "GET", "/trace"
                )
            except _SHARD_DEAD_ERRORS:
                await self._shard_died(shard_id, kill=False)
                continue
            if status != 200:
                continue
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            shard_docs[shard_id] = doc
        merged = stitch_cluster_trace(router_doc, shard_docs)
        body = render_chrome_json(merged).encode("utf-8")
        return 200, {"Content-Type": "application/json; charset=utf-8"}, body

    @staticmethod
    def _fold_exposition(
        text: str,
        order: List[str],
        kinds: Dict[str, str],
        sums: Dict[str, int],
    ) -> None:
        """Accumulate one shard's int rows into the aggregation state."""
        pending_kind: Dict[str, str] = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) == 4:
                    pending_kind[parts[2]] = parts[3]
                continue
            if not line or line.startswith("#"):
                continue
            name, _, value_text = line.partition(" ")
            if "{" in name:
                continue  # labeled series are shard-local detail
            try:
                value = int(value_text)
            except ValueError:
                continue  # float gauges do not sum meaningfully
            if name not in kinds:
                order.append(name)
                kinds[name] = pending_kind.get(name, "counter")
                sums[name] = 0
            sums[name] += value


class RouterServer(MappingServer):
    """The shared HTTP loop with the router's routing table."""

    def __init__(self, router: ClusterRouter):
        super().__init__(router)  # type: ignore[arg-type]
        self.router = router

    async def _route(self, request: _Request) -> Response:
        router = self.router
        if request.path in ("/map", "/map/delta"):
            if request.method != "POST":
                return 405, {"Allow": "POST"}, _error_body(
                    "MethodNotAllowed", f"{request.path} accepts POST only"
                )
            tenant = request.headers.get("x-tenant", DEFAULT_TENANT) or (
                DEFAULT_TENANT
            )
            if request.path == "/map":
                return await router.handle_map(request.body, tenant)
            return await router.handle_delta(request.body, tenant)
        if request.method != "GET":
            return 405, {"Allow": "GET"}, _error_body(
                "MethodNotAllowed", f"{request.path} accepts GET only"
            )
        if request.path == "/healthz":
            return router.healthz()
        if request.path == "/metrics":
            return await router.render_metrics()
        if request.path == "/ring":
            return router.render_ring()
        if request.path == "/trace":
            return await router.render_trace()
        return 404, {}, _error_body("NotFound", f"no route for {request.path}")


async def route_serve(config: Optional[RouterConfig] = None) -> None:
    """Run a sharded cluster until SIGTERM/SIGINT (the ``repro route`` body)."""
    router = ClusterRouter(config or RouterConfig())
    server = RouterServer(router)
    host, port = await server.start()
    server.install_signal_handlers()
    shard_count = len(router.ring)
    print(
        f"repro router listening on http://{host}:{port} "
        f"({shard_count} shard{'s' if shard_count != 1 else ''})",
        flush=True,
    )
    for shard_id in router.ring.shards:
        shard_host, shard_port = router._endpoints[shard_id]
        print(f"  {shard_id}: http://{shard_host}:{shard_port}", flush=True)
    await server.serve_until_shutdown()
    print("repro router drained and stopped", flush=True)
