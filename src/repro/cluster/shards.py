"""Shard lifecycle: spawn, watch, kill, and restart mapping-service shards.

Two interchangeable supervisors behind one small async surface
(:class:`ShardSupervisor`):

* :class:`SubprocessShardSupervisor` — production shape: each shard is a
  real ``python -m repro serve`` child on an ephemeral port (the same
  boot contract ``make serve-smoke`` exercises: the child announces
  ``listening on http://host:port`` on stdout).  All process management
  is synchronous and runs on the event loop's default *thread* pool via
  ``run_in_executor(None, ...)`` so the router's loop never blocks on a
  ``Popen``/``wait`` (RPL006) and nothing is shipped to a process pool
  (RPL104).
* :class:`InProcessShards` — test shape: each shard is a
  (:class:`~repro.service.app.MappingService`,
  :class:`~repro.service.http.MappingServer`) pair on the current loop
  with ``workers=0``, so cluster tests run without subprocess or
  process-pool overhead.  ``kill`` drains the victim's listener —
  subsequent connects are refused, exactly what a dead shard looks like
  to the router — and ``restart`` builds a *fresh* service with empty
  caches, which is what makes replication replay observable.

Shard ids are ``shard-0 .. shard-N-1`` and stable across restarts: a
replacement process keeps its dead predecessor's id (and ring position),
it just answers on a new port.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.app import MappingService, ServiceConfig
from repro.service.http import MappingServer

#: The serve boot announcement (same regex the serve smoke pins).
_LISTEN_RE = re.compile(r"listening on http://([0-9.]+):(\d+)")

#: Startup lines scanned before giving up on the announcement (a fault
#: plan banner may precede it).
_MAX_BOOT_LINES = 20

Endpoint = Tuple[str, int]


class ShardBootError(RuntimeError):
    """A shard process failed to come up and announce its port."""


class ShardSupervisor:
    """The lifecycle surface the router drives (see module docstring)."""

    async def start_all(self) -> Dict[str, Endpoint]:
        """Boot every shard; returns ``{shard_id: (host, port)}``."""
        raise NotImplementedError

    async def kill(self, shard_id: str) -> None:
        """Terminate ``shard_id`` abruptly (chaos / fault injection)."""
        raise NotImplementedError

    async def restart(self, shard_id: str) -> Endpoint:
        """Replace ``shard_id`` with a fresh, empty-cached process."""
        raise NotImplementedError

    async def stop_all(self) -> None:
        """Graceful full-cluster shutdown."""
        raise NotImplementedError


class SubprocessShardSupervisor(ShardSupervisor):
    """N ``repro serve`` child processes on ephemeral ports."""

    def __init__(
        self,
        shards: int,
        host: str = "127.0.0.1",
        workers_per_shard: int = 1,
        cache_entries: int = 4096,
        cache_ttl: float = 300.0,
        boot_timeout: float = 30.0,
        python: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        trace_sample_every: int = 1,
        trace_step_clock: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._clock = clock
        self.host = host
        self.workers_per_shard = workers_per_shard
        self.cache_entries = cache_entries
        self.cache_ttl = cache_ttl
        self.boot_timeout = boot_timeout
        #: Tracing knobs forwarded onto each shard's ``repro serve``
        #: command line so the whole cluster shares one trace posture.
        self.trace_sample_every = trace_sample_every
        self.trace_step_clock = trace_step_clock
        self.python = python or sys.executable
        self.shard_ids: Tuple[str, ...] = tuple(
            f"shard-{i}" for i in range(shards)
        )
        self._procs: Dict[str, subprocess.Popen] = {}
        self._endpoints: Dict[str, Endpoint] = {}

    # -- blocking internals (always called off-loop) -----------------------------

    def _command(self) -> List[str]:
        command = [
            self.python, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--workers", str(self.workers_per_shard),
            "--cache-entries", str(self.cache_entries),
            "--cache-ttl", str(self.cache_ttl),
            "--trace-sample-every", str(self.trace_sample_every),
        ]
        if self.trace_step_clock:
            command.append("--trace-step-clock")
        return command

    def _env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        return env

    def _spawn_sync(self, shard_id: str) -> Endpoint:
        proc = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=self._env(),
            text=True,
        )
        assert proc.stdout is not None
        banner: List[str] = []
        for _ in range(_MAX_BOOT_LINES):
            line = proc.stdout.readline()
            if not line:
                break
            banner.append(line)
            match = _LISTEN_RE.search(line)
            if match:
                self._procs[shard_id] = proc
                endpoint = (match.group(1), int(match.group(2)))
                self._endpoints[shard_id] = endpoint
                return endpoint
        proc.kill()
        proc.wait(timeout=10)
        raise ShardBootError(
            f"{shard_id} did not announce a port; output was:\n{''.join(banner)}"
        )

    def _start_all_sync(self) -> Dict[str, Endpoint]:
        try:
            for shard_id in self.shard_ids:
                if shard_id not in self._procs:
                    self._spawn_sync(shard_id)
        except ShardBootError:
            self._stop_all_sync()
            raise
        return dict(self._endpoints)

    def _kill_sync(self, shard_id: str) -> None:
        proc = self._procs.pop(shard_id, None)
        self._endpoints.pop(shard_id, None)
        if proc is None or proc.poll() is not None:
            return
        proc.kill()
        proc.wait(timeout=10)

    def _restart_sync(self, shard_id: str) -> Endpoint:
        self._kill_sync(shard_id)
        return self._spawn_sync(shard_id)

    def _stop_all_sync(self, timeout: float = 30.0) -> None:
        procs = dict(self._procs)
        self._procs.clear()
        self._endpoints.clear()
        for proc in procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = self._clock() + timeout
        for shard_id, proc in procs.items():
            remaining = max(0.1, deadline - self._clock())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)

    # -- async surface -----------------------------------------------------------

    async def start_all(self) -> Dict[str, Endpoint]:
        """Boot every shard off-loop; returns the endpoint map."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._start_all_sync)

    async def kill(self, shard_id: str) -> None:
        """SIGKILL one shard (no drain — this is the chaos path)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._kill_sync, shard_id)

    async def restart(self, shard_id: str) -> Endpoint:
        """Kill any leftover process and boot a fresh one under the id."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._restart_sync, shard_id)

    async def stop_all(self) -> None:
        """SIGTERM every shard and wait for clean drains."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._stop_all_sync)


class InProcessShards(ShardSupervisor):
    """N in-loop service/server pairs — the unit-test cluster."""

    def __init__(
        self,
        shards: int,
        config_factory: Optional[Callable[[], ServiceConfig]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shard_ids: Tuple[str, ...] = tuple(
            f"shard-{i}" for i in range(shards)
        )
        self._config_factory = config_factory or (
            lambda: ServiceConfig(
                port=0, workers=0, batch_window=0.0, trace_ring=0
            )
        )
        self._clock = clock
        self.services: Dict[str, MappingService] = {}
        self._servers: Dict[str, MappingServer] = {}
        self._endpoints: Dict[str, Endpoint] = {}

    async def _boot(self, shard_id: str) -> Endpoint:
        service = MappingService(self._config_factory(), clock=self._clock)
        server = MappingServer(service)
        host, port = await server.start()
        self.services[shard_id] = service
        self._servers[shard_id] = server
        self._endpoints[shard_id] = (host, port)
        return (host, port)

    async def start_all(self) -> Dict[str, Endpoint]:
        """Boot every shard on the current loop."""
        for shard_id in self.shard_ids:
            if shard_id not in self._servers:
                await self._boot(shard_id)
        return dict(self._endpoints)

    async def kill(self, shard_id: str) -> None:
        """Tear the shard down; later connects to its port are refused."""
        server = self._servers.pop(shard_id, None)
        self.services.pop(shard_id, None)
        self._endpoints.pop(shard_id, None)
        if server is not None:
            await server.shutdown()

    async def restart(self, shard_id: str) -> Endpoint:
        """Replace the shard with a fresh, empty-cached service."""
        await self.kill(shard_id)
        return await self._boot(shard_id)

    async def stop_all(self) -> None:
        """Shut every shard down cleanly."""
        for shard_id in list(self._servers):
            await self.kill(shard_id)
