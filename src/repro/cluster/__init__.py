"""Horizontally sharded deployment of the mapping service.

One stdlib asyncio front **router** (``repro route``) terminates client
HTTP, supervises N shard subprocesses (each the existing ``repro
serve`` app on its own port), and forwards ``/map`` and ``/map/delta``
by consistent-hashing the *canonical-matrix cache key* onto a hash
ring with virtual nodes — so permutation-equivalent requests and delta
sessions land on the shard that already holds the warm cache and base
matrix.

Layers on top of the per-shard resilience stack (circuit breaker,
bounded-queue 429 shedding, fault-injection recovery):

* **Push-based cache replication** — a cold solve observed on any
  shard is fanned out by the router to every sibling over the shards'
  loopback ``POST /cache/push`` endpoint, and retained in a
  router-side :class:`~repro.cluster.replica.ReplicaStore`, so one
  solve is a warm hit cluster-wide and a dead shard loses no cached
  work (the store is replayed into its replacement).
* **Per-tenant admission quotas** — token buckets keyed on the
  ``X-Tenant`` header (429 + ``Retry-After`` on exhaustion), with
  per-tenant counters on the cluster-level ``/metrics``, which also
  aggregates every shard's counter registry.
* **Degraded-mode health** — shard death re-routes via the ring and is
  visible on ``/healthz`` until the supervisor's restart + cache
  replay completes.

Modules: :mod:`~repro.cluster.ring` (consistent hashing),
:mod:`~repro.cluster.quota` (token buckets),
:mod:`~repro.cluster.replica` (replication payloads + store),
:mod:`~repro.cluster.shards` (subprocess / in-process supervisors),
:mod:`~repro.cluster.router` (the front-end app + HTTP server),
:mod:`~repro.cluster.smoke` (the ``make cluster-smoke`` CI gate).
"""

from repro.cluster.ring import HashRing
from repro.cluster.quota import TenantQuotas, TokenBucket
from repro.cluster.replica import ReplicaEntry, ReplicaStore

__all__ = [
    "HashRing",
    "TenantQuotas",
    "TokenBucket",
    "ReplicaEntry",
    "ReplicaStore",
]
