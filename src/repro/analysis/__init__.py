"""``repro.analysis`` — AST-based static analysis for the reproduction.

PR 1 made the simulator's correctness story rest on two invariants that
only *dynamic* tests guarded: bit-identical counters between the scalar
and batched engines, and full determinism under a fixed seed.  This
package enforces both (and a handful of hygiene properties) *statically*,
so a violation fails ``repro lint`` before the differential harness ever
runs.

Rules carry stable ids (``RPL001``..) and register themselves with the
framework in :mod:`repro.analysis.core`; configuration lives in
``pyproject.toml`` under ``[tool.repro-lint]``.  See DESIGN.md
("Static invariants") for the rationale behind each rule.
"""

from repro.analysis.core import (
    Finding,
    LintConfig,
    Module,
    Project,
    Rule,
    all_rules,
    load_project,
    register_rule,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "load_project",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
]
