"""Incremental driver for ``repro lint``: re-analyze only what changed.

The full-tree run pays two taint fixpoints and a call-graph build; on a
warm tree that is all wasted work, because lint findings are a pure
function of the inputs the cache keys capture:

* a **file-scoped** rule's findings for a module depend only on that
  module's source and the rule configuration, so they are cached per
  ``(relative path, content hash, rules fingerprint)``;
* a **program-scoped** rule reads cross-module state (symbol table,
  call graph, config-field census), so its findings are cached under a
  single bucket keyed by *every* primary module's ``(path, hash)`` pair
  — touching any primary file re-runs exactly the program rules, and
  touching a tier file (tests, benchmarks) re-runs only that file's
  file-scoped rules.

Inline suppressions, tier filters, config ignores and syntax findings
are always computed fresh: they are cheap, and keeping them out of the
cached payloads means a stale cache can never resurrect a suppressed
finding or lose a hygiene one.

The cache itself follows the ``experiments/cache.py`` contract: one
JSON file per key under ``.repro-lint-cache/``, atomic writes, and a
read that treats missing, truncated, corrupt, or wrong-shape entries as
plain misses — the directory can be deleted at any time.  A stored
entry records the relative path it was computed for; a key collision
that crosses files (astronomically unlikely, trivially cheap to guard)
is rejected and re-analyzed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    all_rules,
    finalize_findings,
    syntax_findings,
)
from repro.experiments.cache import config_key

#: Bump when cached finding payloads become semantically incompatible
#: (rule renames, new finding fields, changed program-bucket shape).
LINT_CACHE_SCHEMA = 1

#: Default cache directory name, created under the project root.
CACHE_DIR_NAME = ".repro-lint-cache"


class LintCache:
    """JSON-per-key cache directory with atomic writes and tolerant reads."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored payload for ``key``; None on any kind of miss.

        A corrupt entry (truncated write, bit flip, hand-edited file,
        non-dict payload) is a miss — the follow-up ``put`` repairs it.
        """
        try:
            with self._path(key).open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically (tmp + rename)."""
        data = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(data)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


@dataclass
class IncrementalStats:
    """What the incremental run actually did (asserted by the tests)."""

    file_hits: int = 0
    file_misses: int = 0
    program_hit: bool = False
    #: Relative paths whose file-scoped rules were re-executed.
    reanalyzed: List[str] = field(default_factory=list)


def source_hash(source: str) -> str:
    """Content hash a module's findings are keyed under."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_fingerprint(rules: Iterable[Rule]) -> str:
    """Key component covering the rule set and its resolved options.

    Any change to which rules run, their scope, or their configured
    options (pyproject edits included, since options are resolved before
    instantiation) lands here and invalidates every entry.
    """
    return config_key(
        "repro-lint-rules",
        LINT_CACHE_SCHEMA,
        [
            [rule.id, rule.scope, sorted((k, repr(v)) for k, v in rule.options.items())]
            for rule in sorted(rules, key=lambda r: r.id)
        ],
    )


def _encode(findings: Iterable[Finding]) -> List[Dict[str, Any]]:
    return [
        {"path": f.path, "line": f.line, "col": f.col, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]


def _decode(payload: Any) -> Optional[List[Finding]]:
    """Findings from a cached payload, or None when the shape is wrong."""
    if not isinstance(payload, list):
        return None
    findings = []
    for item in payload:
        try:
            findings.append(
                Finding(
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    rule=str(item["rule"]),
                    message=str(item["message"]),
                )
            )
        except (TypeError, KeyError, ValueError):
            return None
    return findings


def run_lint_incremental(
    project: Project,
    rules: Optional[Iterable[Rule]] = None,
    cache: Optional[LintCache] = None,
) -> Tuple[List[Finding], IncrementalStats]:
    """:func:`~repro.analysis.core.run_lint`, memoized per content hash.

    Returns ``(findings, stats)`` where ``findings`` is byte-identical
    to a cold :func:`run_lint` over the same project and ``stats``
    reports the hit/miss split.
    """
    rule_list = list(rules) if rules is not None else all_rules(project.config)
    cache = cache if cache is not None else LintCache(project.root / CACHE_DIR_NAME)
    file_rules = [r for r in rule_list if r.scope != "program"]
    program_rules = [r for r in rule_list if r.scope == "program"]
    fingerprint = rules_fingerprint(rule_list)
    stats = IncrementalStats()
    findings: List[Finding] = list(syntax_findings(project.modules))
    hashes = {m.rel: source_hash(m.source) for m in project.modules}

    for module in project.modules:
        key = config_key("lint-file", module.rel, hashes[module.rel], fingerprint)
        cached = cache.get(key)
        decoded = _decode(cached.get("findings")) if cached else None
        if decoded is not None and cached.get("rel") == module.rel:
            stats.file_hits += 1
            findings.extend(decoded)
            continue
        stats.file_misses += 1
        stats.reanalyzed.append(module.rel)
        sub = Project(root=project.root, modules=[module], config=project.config)
        fresh: List[Finding] = []
        for rule in file_rules:
            fresh.extend(rule.check(sub))
        cache.put(key, {"rel": module.rel, "findings": _encode(fresh)})
        findings.extend(fresh)

    # Program-scoped rules see only the primary modules (tier files are
    # invisible to the call graph / census), so the bucket is keyed by
    # exactly those hashes: touching a test never rebuilds the fixpoints.
    program_key = config_key(
        "lint-program",
        fingerprint,
        sorted((m.rel, hashes[m.rel]) for m in project.primary_modules),
    )
    cached = cache.get(program_key)
    decoded = _decode(cached.get("findings")) if cached else None
    if decoded is not None and cached.get("scope") == "program":
        stats.program_hit = True
        findings.extend(decoded)
    else:
        fresh = []
        for rule in program_rules:
            fresh.extend(rule.check(project))
        cache.put(program_key, {"scope": "program", "findings": _encode(fresh)})
        findings.extend(fresh)

    return finalize_findings(project, findings), stats
