"""Render lint findings as text or JSON.

The JSON shape is versioned and key-sorted so downstream tooling (and
the snapshot test in ``tests/analysis``) can rely on byte-stable output
for a given finding set.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Optional, Sequence

from repro.analysis.core import Finding, Rule

#: Bump when the JSON report shape changes incompatibly.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """gcc-style one-line-per-finding report with a trailing summary."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        by_rule = Counter(f.rule for f in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append("repro-lint: clean (0 findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable ordering, 2-space indent)."""
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        "counts": dict(sorted(Counter(f.rule for f in findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None
) -> str:
    """Minimal SARIF 2.1.0 log, one run, stable key order.

    ``rules`` (when given) populates ``tool.driver.rules`` so SARIF
    viewers can show rule titles; findings referencing unlisted rules
    (RPL000 syntax markers, RPL100 hygiene) still carry their id.  SARIF
    columns are 1-based, so ``startColumn`` is the finding's 0-based
    ``col`` plus one.
    """
    descriptors = [
        {"id": rule.id, "shortDescription": {"text": rule.title}}
        for rule in sorted(rules or (), key=lambda r: r.id)
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line, "startColumn": f.col + 1},
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
