"""Render lint findings as text or JSON.

The JSON shape is versioned and key-sorted so downstream tooling (and
the snapshot test in ``tests/analysis``) can rely on byte-stable output
for a given finding set.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.analysis.core import Finding

#: Bump when the JSON report shape changes incompatibly.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """gcc-style one-line-per-finding report with a trailing summary."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        by_rule = Counter(f.rule for f in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append("repro-lint: clean (0 findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable ordering, 2-space indent)."""
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        "counts": dict(sorted(Counter(f.rule for f in findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
