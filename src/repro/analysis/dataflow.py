"""Interprocedural taint analysis over the program index.

The determinism contract (DESIGN.md §11) says simulation results are
pure functions of their configuration.  RPL002 enforces the *call
sites* — no ``time.time()`` inside ``src/repro`` — but a value can be
laundered: a helper reads the clock, returns it, and the caller hands
it to ``core/`` as an innocent-looking float.  This module tracks those
flows.

The analysis is a classic summary-based forward taint propagation:

* **Labels.**  An expression's taint is a set of labels: ``SOURCE``
  (derives from a wall-clock/OS-entropy read) and ``P<i>`` (derives
  from the enclosing function's i-th parameter).
* **Summaries.**  Each function gets ``(returns_source,
  param_flows)``: whether its return value carries ``SOURCE`` taint of
  its own, and which parameter positions flow into the return value.
  Summaries are computed to a fixpoint over the call graph, so a chain
  of helpers any depth long propagates.
* **Actual taints.**  A second fixpoint pushes concrete ``SOURCE``
  taint through call sites: if ``f`` passes a tainted argument into
  ``g``'s parameter ``j``, that parameter is *actually* tainted in
  every analysis of ``g``, transitively.  Each actually-tainted
  parameter remembers one witness call site for diagnostics.

Conservative choices (documented, deliberate):

* Unresolved calls (numpy, stdlib, methods on arbitrary objects)
  propagate the union of their argument and receiver taints — tainted
  data stays tainted through ``str()``/``round()``/method chains.
* Branches join by set union; loops run their body twice so
  loop-carried variables propagate.
* Attribute state is tracked per-function (``self.x = tainted`` taints
  later ``self.x`` reads in the *same* function only).  Cross-method
  attribute flows are out of scope — and the injected-clock pattern
  (``self.clock = time.monotonic``, a function *reference*, never a
  call result) is deliberately not a source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.core import dotted_name
from repro.analysis.program import FunctionInfo, ProgramIndex

#: Taint label carried by values derived from an entropy/clock read.
SOURCE = "SOURCE"

#: (module, attribute) call suffixes treated as taint sources by
#: default — the RPL002 ban list: wall clocks, OS entropy, UUIDs.
DEFAULT_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "*"),
    ("secrets", "*"),
)


def source_matcher(
    suffixes: Tuple[Tuple[str, str], ...] = DEFAULT_SOURCES
) -> Callable[[Optional[str]], bool]:
    """Predicate: does a dotted call name read a taint source?"""

    def match(dotted: Optional[str]) -> bool:
        if dotted is None:
            return False
        parts = dotted.split(".")
        if len(parts) < 2:
            return False
        mod, attr = parts[-2], parts[-1]
        return any(
            mod == s_mod and (s_attr == "*" or attr == s_attr)
            for s_mod, s_attr in suffixes
        )

    return match


@dataclass(frozen=True)
class Summary:
    """What a function's return value may carry."""

    returns_source: bool = False
    param_flows: FrozenSet[int] = frozenset()


@dataclass
class CallEvent:
    """One call observed during an analysis pass."""

    node: ast.Call
    dotted: Optional[str]
    callee: Optional[str]  # resolved qualname or None
    result_labels: FrozenSet[str]
    arg_labels: List[FrozenSet[str]]  # positional args, receiver excluded


@dataclass
class FunctionAnalysis:
    """Result of one intraprocedural pass."""

    return_labels: Set[str] = field(default_factory=set)
    calls: List[CallEvent] = field(default_factory=list)


@dataclass
class Witness:
    """Why a parameter is actually tainted: the offending call site."""

    caller: str
    node: ast.Call


class TaintEngine:
    """Summary-based interprocedural taint over a :class:`ProgramIndex`."""

    #: Fixpoint iteration cap; taint sets only grow, so convergence is
    #: guaranteed — the cap is a defensive bound, not a tuning knob.
    MAX_ITERATIONS = 50

    def __init__(
        self,
        index: ProgramIndex,
        is_source: Optional[Callable[[Optional[str]], bool]] = None,
    ):
        self.index = index
        self.is_source = is_source or source_matcher()
        self.summaries: Dict[str, Summary] = {}
        #: qualname → per-parameter actual SOURCE taint.
        self.actual_taints: Dict[str, List[bool]] = {}
        #: (qualname, param index) → witness call site.
        self.witnesses: Dict[Tuple[str, int], Witness] = {}
        self._solved = False

    # -- public API --------------------------------------------------------------

    def solve(self) -> None:
        """Run both fixpoints (idempotent)."""
        if self._solved:
            return
        self._solve_summaries()
        self._solve_actual_taints()
        self._solved = True

    def analyze(self, qualname: str) -> FunctionAnalysis:
        """Final concrete pass over one function (call events recorded).

        Parameters carry ``SOURCE`` where the actual-taint fixpoint
        proved a tainted value reaches them from some call site.
        """
        self.solve()
        info = self.index.functions[qualname]
        return self._run(info, self._concrete_param_labels(info))

    def summary(self, qualname: str) -> Summary:
        """The solved :class:`Summary` for ``qualname`` (empty if unknown)."""
        self.solve()
        return self.summaries.get(qualname, Summary())

    def param_witness(self, qualname: str, position: int) -> Optional[Witness]:
        """The call site that tainted ``qualname``'s ``position``-th param."""
        return self.witnesses.get((qualname, position))

    # -- fixpoints ---------------------------------------------------------------

    def _solve_summaries(self) -> None:
        self.summaries = {q: Summary() for q in self.index.functions}
        for _ in range(self.MAX_ITERATIONS):
            changed = False
            for qual, info in self.index.functions.items():
                labels = {
                    name: frozenset({f"P{i}"})
                    for i, name in enumerate(info.params)
                }
                result = self._run(info, labels)
                flows = frozenset(
                    i
                    for i in range(len(info.params))
                    if f"P{i}" in result.return_labels
                )
                summary = Summary(SOURCE in result.return_labels, flows)
                if summary != self.summaries[qual]:
                    self.summaries[qual] = summary
                    changed = True
            if not changed:
                return

    def _solve_actual_taints(self) -> None:
        self.actual_taints = {
            q: [False] * len(info.params)
            for q, info in self.index.functions.items()
        }
        for _ in range(self.MAX_ITERATIONS):
            changed = False
            for qual, info in self.index.functions.items():
                result = self._run(info, self._concrete_param_labels(info))
                for event in result.calls:
                    if event.callee not in self.actual_taints:
                        continue
                    callee_info = self.index.functions[event.callee]
                    offset = self._receiver_offset(callee_info, event.dotted)
                    for pos, labels in enumerate(event.arg_labels):
                        target = pos + offset
                        if SOURCE not in labels:
                            continue
                        if target >= len(self.actual_taints[event.callee]):
                            continue
                        if not self.actual_taints[event.callee][target]:
                            self.actual_taints[event.callee][target] = True
                            self.witnesses[(event.callee, target)] = Witness(
                                qual, event.node
                            )
                            changed = True
            if not changed:
                return

    def _concrete_param_labels(
        self, info: FunctionInfo
    ) -> Dict[str, FrozenSet[str]]:
        taints = self.actual_taints.get(info.qualname, [])
        return {
            name: frozenset({SOURCE}) if i < len(taints) and taints[i] else frozenset()
            for i, name in enumerate(info.params)
        }

    @staticmethod
    def _receiver_offset(callee: FunctionInfo, dotted: Optional[str]) -> int:
        """Positional offset mapping call args onto callee params.

        ``obj.method(a)`` binds ``a`` to parameter 1 (``self`` is 0);
        a plain function call binds positionally from 0.
        """
        if callee.is_method and dotted is not None and "." in dotted:
            return 1
        return 0

    # -- intraprocedural pass ----------------------------------------------------

    def _run(
        self, info: FunctionInfo, param_labels: Dict[str, FrozenSet[str]]
    ) -> FunctionAnalysis:
        walker = _Walker(self, info, param_labels)
        walker.run()
        return walker.result


class _Walker:
    """One forward pass over a function body with a taint environment."""

    def __init__(
        self,
        engine: TaintEngine,
        info: FunctionInfo,
        param_labels: Dict[str, FrozenSet[str]],
    ):
        self.engine = engine
        self.info = info
        self.mod = _module_of(engine.index, info)
        self.env: Dict[str, FrozenSet[str]] = dict(param_labels)
        self.result = FunctionAnalysis()

    def run(self) -> None:
        self._block(self.info.node.body)

    # -- statements --------------------------------------------------------------

    def _block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are separate functions (or out of scope)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.result.return_labels |= self._labels(stmt.value)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.If):
            self._labels(stmt.test)
            self._branch([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._labels(stmt.iter)
            self._bind_target(stmt.target, iter_labels)
            # Two passes propagate loop-carried taint; union with the
            # zero-iteration env happens implicitly (env only grows).
            for _ in range(2):
                self._block(stmt.body)
                self._bind_target(stmt.target, self._labels(stmt.iter))
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._labels(stmt.test)
            for _ in range(2):
                self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._labels(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, labels)
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            self._labels(stmt.value)
            return
        # Everything else (raise, assert, pass, del, global, import…):
        # evaluate child expressions for their call events.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._labels(child)

    def _branch(self, blocks: List[List[ast.stmt]]) -> None:
        """Run alternative blocks from one starting env; union results."""
        start = dict(self.env)
        merged: Dict[str, FrozenSet[str]] = dict(start)
        for block in blocks:
            self.env = dict(start)
            self._block(block)
            for name, labels in self.env.items():
                merged[name] = merged.get(name, frozenset()) | labels
        self.env = merged

    def _assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._labels(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            self._bind_target(stmt.target, self._labels(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self._labels(stmt.value)
            key = self._target_key(stmt.target)
            if key is not None:
                self.env[key] = self.env.get(key, frozenset()) | labels

    def _bind_target(self, target: ast.expr, labels: FrozenSet[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, labels)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, labels)
            return
        key = self._target_key(target)
        if key is not None:
            self.env[key] = labels
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted taints the container binding.
            base = self._target_key(target.value)
            if base is not None:
                self.env[base] = self.env.get(base, frozenset()) | labels

    @staticmethod
    def _target_key(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None and dotted.startswith("self."):
                return dotted
        return None

    # -- expressions -------------------------------------------------------------

    def _labels(self, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None and dotted in self.env:
                return self.env[dotted]
            return self._labels(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Await):
            return self._labels(node.value)
        if isinstance(node, ast.Lambda):
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            labels = self._labels(node.value)
            self._bind_target(node.target, labels)
            return labels
        # Generic join: BinOp, BoolOp, Compare, Subscript, JoinedStr,
        # comprehensions, Tuple/List/Set/Dict literals, Starred, IfExp…
        labels: FrozenSet[str] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._labels(child)
            elif isinstance(child, ast.comprehension):
                iter_labels = self._labels(child.iter)
                self._bind_target(child.target, iter_labels)
                labels |= iter_labels
                for cond in child.ifs:
                    labels |= self._labels(cond)
            elif isinstance(child, ast.keyword):
                labels |= self._labels(child.value)
        return labels

    def _call(self, node: ast.Call) -> FrozenSet[str]:
        engine = self.engine
        dotted = dotted_name(node.func)
        callee = engine.index.resolve(self.mod, dotted, cls=self.info.cls)
        arg_labels = [self._labels(arg) for arg in node.args]
        kw_labels = {
            kw.arg: self._labels(kw.value) for kw in node.keywords
        }  # ``None`` key = **kwargs
        func_labels = (
            self._labels(node.func)
            if not isinstance(node.func, (ast.Name,))
            else frozenset()
        )

        result: FrozenSet[str]
        if engine.is_source(dotted):
            result = frozenset({SOURCE})
        elif callee is not None and callee in engine.summaries:
            info = engine.index.functions[callee]
            summary = engine.summaries[callee]
            result = frozenset({SOURCE}) if summary.returns_source else frozenset()
            offset = TaintEngine._receiver_offset(info, dotted)
            params = info.params
            for flow in summary.param_flows:
                # Positional binding…
                pos = flow - offset
                if 0 <= pos < len(arg_labels):
                    result |= arg_labels[pos]
                # …or keyword binding by parameter name.
                if flow < len(params):
                    result |= kw_labels.get(params[flow], frozenset())
            if 0 in summary.param_flows and offset == 1:
                result |= func_labels  # receiver (self) flows to return
        elif callee is not None and callee in engine.index.classes:
            # Known constructor without an indexed __init__ summary:
            # the instance conservatively carries its argument taints.
            result = frozenset().union(*arg_labels, *kw_labels.values()) if (
                arg_labels or kw_labels
            ) else frozenset()
        else:
            # Unresolved call: conservative union of receiver + args.
            result = func_labels
            for labels in arg_labels:
                result |= labels
            for labels in kw_labels.values():
                result |= labels

        self.result.calls.append(
            CallEvent(node, dotted, callee, result, [frozenset(a) for a in arg_labels])
        )
        return result


def _module_of(index: ProgramIndex, info: FunctionInfo) -> str:
    from repro.analysis.program import module_name_for

    return module_name_for(info.module.rel)
