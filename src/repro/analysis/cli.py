"""``repro lint`` — run the RPL static-analysis rules.

Exit status: 0 when clean, 1 when any finding survives the configured
ignores, 2 on usage errors (unreadable config, no files matched).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import LintConfig, all_rules, load_project, run_lint
from repro.analysis.reporters import render_json, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to ``parser`` (shared with tests)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, falling back to src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: search upward from the current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _find_pyproject(start: Path) -> Optional[Path]:
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation; returns the exit code."""
    if args.config is not None:
        pyproject: Optional[Path] = Path(args.config)
        if not pyproject.is_file():
            print(f"repro lint: config not found: {pyproject}")
            return 2
    else:
        pyproject = _find_pyproject(Path.cwd())

    if pyproject is not None:
        config = LintConfig.from_pyproject(pyproject)
        root = pyproject.parent
    else:
        config = LintConfig()
        root = Path.cwd()

    rules = all_rules(config)
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0

    paths: Sequence[str] = args.paths or config.paths
    project = load_project(root, paths=paths, config=config)
    if not project.modules:
        print(f"repro lint: no python files under {list(paths)!r}")
        return 2

    findings = run_lint(project, rules)
    render = render_json if args.format == "json" else render_text
    print(render(findings))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST static analysis for determinism and engine parity.",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
