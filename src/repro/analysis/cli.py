"""``repro lint`` — run the RPL static-analysis rules.

Exit status: 0 when clean, 1 when any finding survives the configured
ignores, 2 on usage errors (unreadable config, no files matched).

Runs are incremental by default: per-file content hashes are cached
under ``.repro-lint-cache/`` at the project root, so a warm re-run only
re-analyzes files whose content (or rule configuration) changed.  Pass
``--no-cache`` or set ``REPRO_LINT_NO_CACHE=1`` to force a cold
full-tree analysis; the cache directory can be deleted at any time.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import LintConfig, all_rules, load_project, run_lint
from repro.analysis.reporters import render_json, render_sarif, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to ``parser`` (shared with tests)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths plus tier directories, falling back to src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: search upward from the current directory)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (also: REPRO_LINT_NO_CACHE=1)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _find_pyproject(start: Path) -> Optional[Path]:
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation; returns the exit code."""
    if args.config is not None:
        pyproject: Optional[Path] = Path(args.config)
        if not pyproject.is_file():
            print(f"repro lint: config not found: {pyproject}")
            return 2
    else:
        pyproject = _find_pyproject(Path.cwd())

    if pyproject is not None:
        config = LintConfig.from_pyproject(pyproject)
        root = pyproject.parent
    else:
        config = LintConfig()
        root = Path.cwd()

    rules = all_rules(config)
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0

    # No explicit paths → config-driven discovery (primary paths + tier
    # directories, exclude patterns honored).  Explicit paths are always
    # loaded verbatim.
    explicit: Optional[List[str]] = list(args.paths) or None
    project = load_project(root, paths=explicit, config=config)
    if not project.modules:
        shown = explicit if explicit is not None else config.paths
        print(f"repro lint: no python files under {shown!r}")
        return 2

    no_cache = getattr(args, "no_cache", False) or bool(
        os.environ.get("REPRO_LINT_NO_CACHE")
    )
    if no_cache:
        findings = run_lint(project, rules)
    else:
        from repro.analysis.incremental import run_lint_incremental

        findings, _stats = run_lint_incremental(project, rules)

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, rules))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST static analysis for determinism and engine parity.",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
