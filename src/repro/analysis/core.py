"""Framework plumbing for the ``repro lint`` static analyzer.

The moving parts, smallest first:

* :class:`Finding` — one diagnostic: rule id, location, message.
* :class:`Module` — one parsed source file (path + AST + source lines).
* :class:`Project` — the set of modules under analysis plus the
  resolved :class:`LintConfig`; rules see the whole project so
  cross-module rules (engine parity, unused config fields) are first
  class, not bolted on.
* :class:`Rule` — the plugin interface.  Concrete rules subclass it,
  decorate themselves with :func:`register_rule`, and yield findings
  from :meth:`Rule.check`.

Configuration is read from ``pyproject.toml``:

.. code-block:: toml

    [tool.repro-lint]
    paths = ["src/repro"]
    ignore = []                         # rule ids disabled everywhere
    [tool.repro-lint.per-file-ignores]
    "src/repro/experiments/runner.py" = ["RPL002"]
    [tool.repro-lint.rpl003]
    scalar-modules = ["repro/mem/cache.py"]

Rule-specific tables are keyed by the lowercased rule id and handed to
the rule verbatim (merged over its declared defaults), so new knobs
never require framework changes.
"""

from __future__ import annotations

import ast
import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Type


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str  # project-relative posix path (sort key first: groups output)
    line: int
    col: int
    rule: str  # e.g. "RPL001"
    message: str

    def render(self) -> str:
        """One-line gcc-style rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Module:
    """One parsed source file."""

    path: Path  # absolute
    rel: str  # posix path relative to the project root
    tree: ast.Module
    source: str

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def path_matches(rel: str, pattern: str) -> bool:
    """Match a project-relative posix path against a config pattern.

    Patterns may be full relative paths, bare suffixes
    (``repro/util/rng.py`` matches ``src/repro/util/rng.py``) or fnmatch
    globs (``*/util/rng.py``) — whatever reads best in pyproject.
    """
    return (
        rel == pattern
        or rel.endswith("/" + pattern)
        or fnmatch.fnmatch(rel, pattern)
    )


@dataclass
class LintConfig:
    """Resolved ``[tool.repro-lint]`` configuration."""

    paths: List[str] = field(default_factory=lambda: ["src/repro"])
    ignore: Tuple[str, ...] = ()
    per_file_ignores: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Load the ``[tool.repro-lint]`` table (missing table = defaults)."""
        with pyproject.open("rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get("repro-lint", {})
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: Mapping[str, Any]) -> "LintConfig":
        """Build a config from an already-parsed TOML table."""
        cfg = cls()
        if "paths" in table:
            cfg.paths = [str(p) for p in table["paths"]]
        cfg.ignore = tuple(str(r).upper() for r in table.get("ignore", ()))
        pfi = table.get("per-file-ignores", {})
        cfg.per_file_ignores = {
            str(pat): tuple(str(r).upper() for r in rules)
            for pat, rules in pfi.items()
        }
        cfg.rule_options = {
            key.lower(): dict(value)
            for key, value in table.items()
            if isinstance(value, Mapping) and key.lower().startswith("rpl")
        }
        return cfg

    def options_for(self, rule_id: str) -> Dict[str, Any]:
        """Rule-specific option table (``[tool.repro-lint.rpl003]``)."""
        return self.rule_options.get(rule_id.lower(), {})

    def is_ignored(self, finding: Finding) -> bool:
        """Whether ``finding`` is suppressed by global or per-file config."""
        if finding.rule in self.ignore:
            return True
        for pattern, rules in self.per_file_ignores.items():
            if finding.rule in rules and path_matches(finding.path, pattern):
                return True
        return False


@dataclass
class Project:
    """Everything a rule may look at."""

    root: Path
    modules: List[Module]
    config: LintConfig

    def find_modules(self, pattern: str) -> List[Module]:
        """Modules whose relative path matches ``pattern``."""
        return [m for m in self.modules if path_matches(m.rel, pattern)]


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`title`, may declare option
    defaults in :attr:`default_options`, and implement :meth:`check`.
    """

    id: str = "RPL000"
    title: str = ""
    default_options: Dict[str, Any] = {}

    def __init__(self, options: Optional[Mapping[str, Any]] = None):
        merged = dict(self.default_options)
        merged.update(options or {})
        self.options = merged

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings for ``project``."""
        raise NotImplementedError

    def opt(self, key: str) -> Any:
        """Option value (config table wins over the rule default)."""
        return self.options[key]


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the global rule registry."""
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules(config: Optional[LintConfig] = None) -> List[Rule]:
    """Instantiate every registered rule with its configured options."""
    # Importing the package triggers registration of the built-in rules.
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)

    config = config or LintConfig()
    return [
        _REGISTRY[rule_id](config.options_for(rule_id))
        for rule_id in sorted(_REGISTRY)
    ]


def _iter_py_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    for spec in paths:
        p = (root / spec).resolve() if not Path(spec).is_absolute() else Path(spec)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def load_project(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    A file that fails to parse becomes a project with no module for that
    path — syntax errors are reported by :func:`run_lint` as ``RPL000``
    findings rather than crashing the linter.
    """
    root = root.resolve()
    config = config or LintConfig()
    modules: List[Module] = []
    for path in _iter_py_files(root, paths or config.paths):
        source = path.read_text(encoding="utf-8")
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            # Represent the broken file as an empty module carrying a
            # synthetic marker the runner turns into an RPL000 finding.
            tree = ast.Module(body=[], type_ignores=[])
            setattr(tree, "_syntax_error", exc)
        modules.append(Module(path=path, rel=rel, tree=tree, source=source))
    return Project(root=root, modules=modules, config=config)


def run_lint(project: Project, rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all registered) over ``project``.

    Returns findings sorted by (path, line, col, rule), with config
    ignores already applied.
    """
    findings: List[Finding] = []
    for module in project.modules:
        exc = getattr(module.tree, "_syntax_error", None)
        if exc is not None:
            findings.append(
                Finding(
                    path=module.rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="RPL000",
                    message=f"syntax error: {exc.msg}",
                )
            )
    for rule in rules if rules is not None else all_rules(project.config):
        findings.extend(rule.check(project))
    findings = [f for f in findings if not project.config.is_ignored(f)]
    return sorted(findings)


# -- shared AST helpers used by several rules ---------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (None if dynamic)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def counter_target(node: ast.AST, extra_counters: Sequence[str] = ()) -> Optional[str]:
    """Name of the stats counter an augmented-assignment target denotes.

    Matches ``<recv>.stats.X``, ``<name>_stats.X``, ``stats.X`` and
    subscripted counters (``stats.per_cache_misses[i]``), plus any
    attribute listed in ``extra_counters`` regardless of receiver.
    Returns the counter attribute name, or None when the target is not a
    counter.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    attr = node.attr
    if attr in extra_counters:
        return attr
    recv = node.value
    if isinstance(recv, ast.Name):
        recv_name = recv.id
    elif isinstance(recv, ast.Attribute):
        recv_name = recv.attr
    else:
        return None
    if recv_name == "stats" or recv_name.endswith("_stats"):
        return attr
    return None


def dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, Optional[str], bool]]:
    """Annotated fields of a (data)class body.

    Returns ``(name, annotation_source, has_default)`` triples in
    declaration order; ClassVar annotations are skipped.
    """
    fields: List[Tuple[str, Optional[str], bool]] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        ann = ast.unparse(stmt.annotation)
        if "ClassVar" in ann:
            continue
        fields.append((stmt.target.id, ann, stmt.value is not None))
    return fields
