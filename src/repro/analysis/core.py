"""Framework plumbing for the ``repro lint`` static analyzer.

The moving parts, smallest first:

* :class:`Finding` — one diagnostic: rule id, location, message.
* :class:`Module` — one parsed source file (path + AST + source lines).
* :class:`Project` — the set of modules under analysis plus the
  resolved :class:`LintConfig`; rules see the whole project so
  cross-module rules (engine parity, unused config fields) are first
  class, not bolted on.
* :class:`Rule` — the plugin interface.  Concrete rules subclass it,
  decorate themselves with :func:`register_rule`, and yield findings
  from :meth:`Rule.check`.

Configuration is read from ``pyproject.toml``:

.. code-block:: toml

    [tool.repro-lint]
    paths = ["src/repro"]
    ignore = []                         # rule ids disabled everywhere
    [tool.repro-lint.per-file-ignores]
    "src/repro/experiments/runner.py" = ["RPL002"]
    [tool.repro-lint.rpl003]
    scalar-modules = ["repro/mem/cache.py"]

Rule-specific tables are keyed by the lowercased rule id and handed to
the rule verbatim (merged over its declared defaults), so new knobs
never require framework changes.
"""

from __future__ import annotations

import ast
import fnmatch
import re
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Type


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str  # project-relative posix path (sort key first: groups output)
    line: int
    col: int
    rule: str  # e.g. "RPL001"
    message: str

    def render(self) -> str:
        """One-line gcc-style rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Module:
    """One parsed source file."""

    path: Path  # absolute
    rel: str  # posix path relative to the project root
    tree: ast.Module
    source: str

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def path_matches(rel: str, pattern: str) -> bool:
    """Match a project-relative posix path against a config pattern.

    Patterns may be full relative paths, bare suffixes
    (``repro/util/rng.py`` matches ``src/repro/util/rng.py``) or fnmatch
    globs (``*/util/rng.py``) — whatever reads best in pyproject.
    """
    return (
        rel == pattern
        or rel.endswith("/" + pattern)
        or fnmatch.fnmatch(rel, pattern)
    )


@dataclass
class LintConfig:
    """Resolved ``[tool.repro-lint]`` configuration."""

    paths: List[str] = field(default_factory=lambda: ["src/repro"])
    ignore: Tuple[str, ...] = ()
    per_file_ignores: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Files never loaded at all (fixture corpora full of seeded
    #: violations, generated code).  fnmatch patterns on relative paths.
    exclude: Tuple[str, ...] = ()
    #: Tiered coverage: directory → the only rule ids enforced beneath
    #: it.  Tier directories are loaded in addition to ``paths`` but are
    #: *secondary*: program-scoped rules (symbol table, call graph,
    #: config-field reads) see only the primary modules.
    tiers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Load the ``[tool.repro-lint]`` table (missing table = defaults)."""
        with pyproject.open("rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get("repro-lint", {})
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: Mapping[str, Any]) -> "LintConfig":
        """Build a config from an already-parsed TOML table."""
        cfg = cls()
        if "paths" in table:
            cfg.paths = [str(p) for p in table["paths"]]
        cfg.ignore = tuple(str(r).upper() for r in table.get("ignore", ()))
        cfg.exclude = tuple(str(p) for p in table.get("exclude", ()))
        pfi = table.get("per-file-ignores", {})
        cfg.per_file_ignores = {
            str(pat): tuple(str(r).upper() for r in rules)
            for pat, rules in pfi.items()
        }
        cfg.tiers = {
            str(directory).rstrip("/"): tuple(str(r).upper() for r in rules)
            for directory, rules in table.get("tiers", {}).items()
        }
        cfg.rule_options = {
            key.lower(): dict(value)
            for key, value in table.items()
            if isinstance(value, Mapping)
            and key.lower().startswith("rpl")
            and key.lower() != "tiers"
        }
        return cfg

    def options_for(self, rule_id: str) -> Dict[str, Any]:
        """Rule-specific option table (``[tool.repro-lint.rpl003]``)."""
        return self.rule_options.get(rule_id.lower(), {})

    def is_excluded(self, rel: str) -> bool:
        """Whether a relative path is excluded from loading entirely."""
        return any(path_matches(rel, pattern) for pattern in self.exclude)

    def tier_rules_for(self, rel: str) -> Optional[Tuple[str, ...]]:
        """Rule ids enforced for ``rel`` under a tier, or None (all rules)."""
        for directory, rules in self.tiers.items():
            if rel == directory or rel.startswith(directory + "/"):
                return rules
        return None

    def is_ignored(self, finding: Finding) -> bool:
        """Whether ``finding`` is suppressed by global or per-file config."""
        if finding.rule in self.ignore:
            return True
        tier = self.tier_rules_for(finding.path)
        if tier is not None and finding.rule not in (*tier, "RPL000", "RPL100"):
            return True
        for pattern, rules in self.per_file_ignores.items():
            if finding.rule in rules and path_matches(finding.path, pattern):
                return True
        return False


@dataclass
class Project:
    """Everything a rule may look at."""

    root: Path
    modules: List[Module]
    config: LintConfig
    _program: Optional[Any] = field(default=None, repr=False, compare=False)

    def find_modules(self, pattern: str) -> List[Module]:
        """Modules whose relative path matches ``pattern``."""
        return [m for m in self.modules if path_matches(m.rel, pattern)]

    @property
    def primary_modules(self) -> List[Module]:
        """Modules under the full rule set (tier directories excluded).

        Program-scoped rules build their symbol table / call graph /
        config-read census over these only: a config field read in a
        *test* must not count as wired, and test helpers must not join
        the production call graph.
        """
        return [
            m for m in self.modules if self.config.tier_rules_for(m.rel) is None
        ]

    def program(self) -> Any:
        """The lazily-built :class:`~repro.analysis.program.ProgramIndex`.

        Built once over :attr:`primary_modules` and shared by every
        program-scoped rule in this run.
        """
        if self._program is None:
            from repro.analysis.program import ProgramIndex

            self._program = ProgramIndex.build(self.primary_modules)
        return self._program


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`title`, may declare option
    defaults in :attr:`default_options`, and implement :meth:`check`.
    :attr:`scope` drives the incremental cache: a ``"file"`` rule's
    findings for a module depend only on that module's content, so they
    are cached per file; a ``"program"`` rule reads cross-module state
    (symbol table, call graph, dataclass field reads) and re-runs
    whenever *any* primary module changes.
    """

    id: str = "RPL000"
    title: str = ""
    #: "file" or "program" — see the class docstring.
    scope: str = "file"
    default_options: Dict[str, Any] = {}

    def __init__(self, options: Optional[Mapping[str, Any]] = None):
        merged = dict(self.default_options)
        merged.update(options or {})
        self.options = merged

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings for ``project``."""
        raise NotImplementedError

    def opt(self, key: str) -> Any:
        """Option value (config table wins over the rule default)."""
        return self.options[key]


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the global rule registry."""
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules(config: Optional[LintConfig] = None) -> List[Rule]:
    """Instantiate every registered rule with its configured options."""
    # Importing the package triggers registration of the built-in rules.
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)

    config = config or LintConfig()
    return [
        _REGISTRY[rule_id](config.options_for(rule_id))
        for rule_id in sorted(_REGISTRY)
    ]


def _iter_py_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    for spec in paths:
        p = (root / spec).resolve() if not Path(spec).is_absolute() else Path(spec)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def load_project(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    When ``paths`` is not given, the configured primary paths *and* the
    tier directories are loaded; ``exclude`` patterns are honored either
    way.  A file that fails to parse becomes a project with a marker
    module for that path — syntax errors are reported by
    :func:`run_lint` as ``RPL000`` findings rather than crashing the
    linter.
    """
    root = root.resolve()
    config = config or LintConfig()
    # ``exclude`` governs config-driven discovery only: a path the user
    # names explicitly (CLI argument, test harness) is always loaded.
    discovered = paths is None
    specs = list(paths) if paths is not None else [*config.paths, *config.tiers]
    modules: List[Module] = []
    seen: Set[Path] = set()
    for path in _iter_py_files(root, specs):
        if path in seen:
            continue
        seen.add(path)
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        if discovered and config.is_excluded(rel):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            # Represent the broken file as an empty module carrying a
            # synthetic marker the runner turns into an RPL000 finding.
            tree = ast.Module(body=[], type_ignores=[])
            setattr(tree, "_syntax_error", exc)
        modules.append(Module(path=path, rel=rel, tree=tree, source=source))
    return Project(root=root, modules=modules, config=config)


# -- inline suppressions ------------------------------------------------------
#
# ``# repro-lint: ignore[RPL101] -- <why>`` on the offending line
# silences that rule there.  The justification is mandatory and the
# mechanism is restricted to the whole-program RPL1xx family: per-file
# rules keep the pyproject-only model (every exemption reviewed in one
# place), while flow findings — whose precise location can shift with
# refactors — may be acknowledged at the site, but never silently.
# A malformed suppression is itself a finding (RPL100), so a bare
# ``ignore[...]`` can never reduce the finding count.

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


def scan_suppressions(
    module: Module,
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Parse inline suppressions from one module's source.

    Returns ``(line → suppressed rule ids, hygiene findings)``.  A
    suppression with no ``-- reason``, an empty rule list, or a rule id
    outside the RPL1xx family yields an RPL100 finding and suppresses
    nothing.
    """
    by_line: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    for lineno, line in enumerate(module.source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {r.strip().upper() for r in match.group(1).split(",") if r.strip()}
        reason = match.group("reason")

        def hygiene(message: str) -> Finding:
            return Finding(
                path=module.rel,
                line=lineno,
                col=match.start(),
                rule="RPL100",
                message=message,
            )

        if not rules:
            findings.append(hygiene("inline suppression names no rule ids"))
            continue
        bad = sorted(r for r in rules if not re.fullmatch(r"RPL1\d\d", r))
        if bad:
            findings.append(
                hygiene(
                    f"inline suppression may only name RPL1xx rules, got "
                    f"{', '.join(bad)}; per-file exemptions for other rules "
                    "belong in [tool.repro-lint.per-file-ignores] with a "
                    "comment"
                )
            )
            continue
        if not reason:
            findings.append(
                hygiene(
                    "inline suppression without a justification — write "
                    "'# repro-lint: ignore[%s] -- <why this flow is safe>'"
                    % ",".join(sorted(rules))
                )
            )
            continue
        by_line.setdefault(lineno, set()).update(rules)
    return by_line, findings


def collect_findings(
    project: Project, rules: Optional[Iterable[Rule]] = None
) -> List[Finding]:
    """Raw rule output for ``project`` (no ignores or suppressions yet)."""
    findings: List[Finding] = []
    findings.extend(syntax_findings(project.modules))
    for rule in rules if rules is not None else all_rules(project.config):
        findings.extend(rule.check(project))
    return findings


def syntax_findings(modules: Iterable[Module]) -> List[Finding]:
    """RPL000 findings for modules that failed to parse."""
    findings: List[Finding] = []
    for module in modules:
        exc = getattr(module.tree, "_syntax_error", None)
        if exc is not None:
            findings.append(
                Finding(
                    path=module.rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="RPL000",
                    message=f"syntax error: {exc.msg}",
                )
            )
    return findings


def finalize_findings(project: Project, findings: List[Finding]) -> List[Finding]:
    """Apply inline suppressions, tier filters and config ignores; sort."""
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for module in project.modules:
        by_line, hygiene = scan_suppressions(module)
        suppressions[module.rel] = by_line
        findings = findings + hygiene

    def suppressed(finding: Finding) -> bool:
        if finding.rule in ("RPL000", "RPL100"):
            return False
        return finding.rule in suppressions.get(finding.path, {}).get(
            finding.line, ()
        )

    findings = [
        f
        for f in findings
        if not suppressed(f) and not project.config.is_ignored(f)
    ]
    return sorted(set(findings))


def run_lint(project: Project, rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all registered) over ``project``.

    Returns findings sorted by (path, line, col, rule), with inline
    suppressions, tier filters and config ignores already applied.
    """
    return finalize_findings(project, collect_findings(project, rules))


# -- shared AST helpers used by several rules ---------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (None if dynamic)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def counter_target(node: ast.AST, extra_counters: Sequence[str] = ()) -> Optional[str]:
    """Name of the stats counter an augmented-assignment target denotes.

    Matches ``<recv>.stats.X``, ``<name>_stats.X``, ``stats.X`` and
    subscripted counters (``stats.per_cache_misses[i]``), plus any
    attribute listed in ``extra_counters`` regardless of receiver.
    Returns the counter attribute name, or None when the target is not a
    counter.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    attr = node.attr
    if attr in extra_counters:
        return attr
    recv = node.value
    if isinstance(recv, ast.Name):
        recv_name = recv.id
    elif isinstance(recv, ast.Attribute):
        recv_name = recv.attr
    else:
        return None
    if recv_name == "stats" or recv_name.endswith("_stats"):
        return attr
    return None


def dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, Optional[str], bool]]:
    """Annotated fields of a (data)class body.

    Returns ``(name, annotation_source, has_default)`` triples in
    declaration order; ClassVar annotations are skipped.
    """
    fields: List[Tuple[str, Optional[str], bool]] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        ann = ast.unparse(stmt.annotation)
        if "ClassVar" in ann:
            continue
        fields.append((stmt.target.id, ann, stmt.value is not None))
    return fields
