"""Whole-program view for the lint rules: symbol table + call graph.

The per-file rules (RPL001–RPL007) see one AST at a time; the RPL1xx
family reasons about *flows* — a wall-clock value laundered through a
helper, a seed derived in one module and consumed in another, a
function shipped into a process pool.  That needs three things the
per-file view cannot provide:

* a **module namespace** per file: what each local name resolves to,
  accounting for ``import``/``from … import`` aliases and local
  ``def``/``class`` statements;
* a **function table** keyed by stable qualified names
  (``repro.service.app.MappingService._dispatch``), mapping back to the
  defining module and AST node;
* a **call graph** over those qualified names, resolved statically
  (dotted names through the namespace, ``self.method`` within a class),
  with unresolved dynamic calls recorded as such rather than guessed.

The index is deliberately *syntactic*: no imports are executed, no
types inferred.  Calls through arbitrary objects (``policy.pre_gate``)
stay unresolved — the dataflow layer treats them conservatively — while
the flows the determinism rules care about (module functions, class
methods via ``self``/``cls``) resolve exactly.

Built lazily once per :class:`~repro.analysis.core.Project` via
``Project.program()`` and shared by every program-scoped rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Module, dotted_name


def module_name_for(rel: str) -> str:
    """Importable dotted module name for a project-relative path.

    ``src/repro/util/rng.py`` → ``repro.util.rng``; a package
    ``__init__.py`` names the package itself; files outside ``src/``
    (fixtures, benchmarks) name by their own path so they stay unique.
    """
    name = rel[:-3] if rel.endswith(".py") else rel
    if name.startswith("src/"):
        name = name[len("src/"):]
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method known to the program index."""

    qualname: str  # e.g. "repro.service.app.MappingService._dispatch"
    module: Module
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: Optional[str] = None  # enclosing class name, if a method

    @property
    def params(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` included."""
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args)]

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class CallSite:
    """One call expression inside a known function."""

    caller: str  # qualname of the enclosing function
    node: ast.Call
    #: Resolved callee qualname, or None when the call is dynamic.
    callee: Optional[str]
    #: The raw dotted spelling at the call site ("np.random.default_rng"),
    #: None for calls through subscripts/calls/etc.
    dotted: Optional[str]


@dataclass
class ProgramIndex:
    """Symbol table, function table and call graph for one project."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Per-module namespace: local name → qualified target.
    namespaces: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Module dotted name → Module.
    modules: Dict[str, Module] = field(default_factory=dict)
    #: Caller qualname → call sites in body order.
    call_sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: Callee qualname → caller qualnames (reverse edges, resolved only).
    callers_of: Dict[str, Set[str]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, modules: List[Module]) -> "ProgramIndex":
        index = cls()
        for module in modules:
            index._index_module(module)
        for module in modules:
            index._resolve_imports(module)
        for module in modules:
            index._collect_calls(module)
        return index

    def _index_module(self, module: Module) -> None:
        mod = module_name_for(module.rel)
        self.modules[mod] = module
        ns: Dict[str, str] = {}
        self.namespaces[mod] = ns
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod}.{stmt.name}"
                self.functions[qual] = FunctionInfo(qual, module, stmt)
                ns[stmt.name] = qual
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{mod}.{stmt.name}"
                self.classes[qual] = stmt
                ns[stmt.name] = qual
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{qual}.{item.name}"
                        self.functions[mqual] = FunctionInfo(
                            mqual, module, item, cls=stmt.name
                        )

    def _resolve_imports(self, module: Module) -> None:
        """Fill the namespace with import aliases (after all defs exist)."""
        ns = self.namespaces[module_name_for(module.rel)]
        for stmt in ast.walk(module.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to the full dotted module.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    ns.setdefault(bound, target)
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    ns.setdefault(bound, f"{stmt.module}.{alias.name}")

    def _collect_calls(self, module: Module) -> None:
        mod = module_name_for(module.rel)
        for info in self.functions.values():
            if info.module is not module:
                continue
            sites: List[CallSite] = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                callee = self.resolve(mod, dotted, cls=info.cls)
                sites.append(CallSite(info.qualname, node, callee, dotted))
                if callee is not None:
                    self.callers_of.setdefault(callee, set()).add(info.qualname)
            self.call_sites[info.qualname] = sites

    # -- queries -----------------------------------------------------------------

    def resolve(
        self, mod: str, dotted: Optional[str], cls: Optional[str] = None
    ) -> Optional[str]:
        """Resolve a dotted name used in module ``mod`` to a qualname.

        ``self.f``/``cls.f`` resolve within the enclosing class ``cls``;
        other names resolve through the module namespace, then through
        one level of attribute access on a resolved class or module
        (``worker.solve_batch`` → ``repro.service.worker.solve_batch``).
        Returns the qualname only when it names a *known* function or
        class; unknown targets (numpy, stdlib) return None.
        """
        if dotted is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head in ("self", "cls") and cls is not None:
            candidate = f"{mod}.{cls}." + ".".join(rest) if rest else None
            if candidate and (candidate in self.functions or candidate in self.classes):
                return candidate
            return None
        ns = self.namespaces.get(mod, {})
        target = ns.get(head)
        if target is None:
            # A fully-qualified spelling of a known module also resolves
            # (fixtures referring to each other by module name).
            target = head if head in self.modules else None
            if target is None:
                return None
        qual = ".".join([target, *rest]) if rest else target
        if qual in self.functions or qual in self.classes:
            return qual
        # ``import repro.service.worker as worker`` + ``worker.solve_batch``
        # lands here with qual already full; a *re-exported* name
        # (``from repro.service import worker``) resolves through the
        # imported module's own namespace one step.
        if rest and target in self.namespaces:
            hop = self.namespaces[target].get(rest[0])
            if hop is not None:
                qual = ".".join([hop, *rest[1:]])
                if qual in self.functions or qual in self.classes:
                    return qual
        return None

    def resolve_call(self, module: Module, call: ast.Call, cls: Optional[str] = None) -> Optional[str]:
        """Resolve one call node appearing in ``module``."""
        return self.resolve(module_name_for(module.rel), dotted_name(call.func), cls=cls)

    def callees(self, qualname: str) -> Iterator[str]:
        """Resolved callee qualnames of ``qualname`` (with repeats removed)."""
        seen: Set[str] = set()
        for site in self.call_sites.get(qualname, ()):
            if site.callee is not None and site.callee not in seen:
                seen.add(site.callee)
                yield site.callee

    def callers(self, qualname: str) -> Set[str]:
        """Qualnames whose bodies contain a resolved call to ``qualname``."""
        return self.callers_of.get(qualname, set())

    def function_for_node(
        self, module: Module, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """The function whose body contains ``node`` (by line span)."""
        best: Optional[FunctionInfo] = None
        line = getattr(node, "lineno", None)
        if line is None:
            return None
        for info in self.functions.values():
            if info.module is not module:
                continue
            end = getattr(info.node, "end_lineno", info.node.lineno)
            if info.node.lineno <= line <= end:
                if best is None or info.node.lineno >= best.node.lineno:
                    best = info
        return best

    def transitive_closure(
        self, roots: List[str], limit: int = 2000
    ) -> List[str]:
        """Qualnames reachable from ``roots`` through resolved calls.

        Breadth-first, deterministic order, bounded by ``limit`` as a
        runaway guard (the bound is far above any real closure here).
        """
        seen: Set[str] = set()
        order: List[str] = []
        frontier = [r for r in roots if r in self.functions]
        while frontier and len(order) < limit:
            nxt: List[str] = []
            for qual in frontier:
                if qual in seen:
                    continue
                seen.add(qual)
                order.append(qual)
                for callee in self.callees(qual):
                    target = callee
                    if target in self.classes:
                        # Calling a class runs its __init__ when known.
                        init = f"{target}.__init__"
                        target = init if init in self.functions else target
                    if target in self.functions and target not in seen:
                        nxt.append(target)
            frontier = nxt
        return order
