"""RPL102 — check-then-act on shared state must not span an ``await``.

The mapping service is single-threaded asyncio: there are no data
races, but every ``await`` is a scheduling point where *other* request
handlers run and mutate the shared ``self`` state — the canonical
cache, the circuit breaker, the executor handle, the delta base-store.
A guard tested *before* a suspension point says nothing about the state
*after* it:

.. code-block:: python

    if self._executor is None:
        await self.start()               # <- another task may aclose()
    await loop.run_in_executor(self._executor, ...)   # may be None again

This rule linearizes every ``async def`` in the configured paths and
runs a small event machine per ``self.<attr>``:

* testing ``self.x`` (in an ``if``/``while``/``assert`` condition)
  makes it *fresh*;
* a local derived from ``self.x`` and then tested also makes it fresh
  — but only when the derivation happened after the last ``await``
  (testing a pre-suspension snapshot is exactly the TOCTOU bug);
* any ``await`` turns every fresh attribute *stale*;
* using or writing ``self.x`` while stale is a finding.  Re-testing,
  or re-reading into a new local and testing that, clears it.

Branch bodies are flattened in source order — an ``await`` on *any*
path between check and act is treated as intervening.  That is the
conservative reading this bug class needs; genuinely-safe flows are
acknowledged with an inline ``# repro-lint: ignore[RPL102] -- <why>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    path_matches,
    register_rule,
)

# Event kinds emitted by the linearizer.
_TEST = "test"  # self.x appears in a condition
_TEST_LOCAL = "test-local"  # a local name appears in a condition
_USE = "use"  # self.x read outside a condition
_WRITE = "write"  # self.x = ...
_DERIVE = "derive"  # local = <expr reading self.x>
_AWAIT = "await"  # suspension point


@dataclass
class _Event:
    kind: str
    node: ast.AST
    attr: Optional[str] = None  # self.<attr> involved, if any
    local: Optional[str] = None  # local name involved, if any
    attrs: Tuple[str, ...] = ()  # for derive: every attr read by the rhs


@dataclass
class _Linearizer:
    """Flatten an async function body into an event stream, source order."""

    events: List[_Event] = field(default_factory=list)

    def block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs run later, under their own analysis
        if isinstance(stmt, (ast.If, ast.While)):
            self.expr(stmt.test, testing=True)
            self.block(stmt.body)
            self.block(stmt.orelse)
            return
        if isinstance(stmt, ast.Assert):
            self.expr(stmt.test, testing=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.expr(stmt.iter, testing=False)
            if isinstance(stmt, ast.AsyncFor):
                self.events.append(_Event(_AWAIT, stmt))
            self.block(stmt.body)
            self.block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.expr(item.context_expr, testing=False)
            if isinstance(stmt, ast.AsyncWith):
                self.events.append(_Event(_AWAIT, stmt))
            self.block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.block(stmt.body)
            for handler in stmt.handlers:
                self.block(handler.body)
            self.block(stmt.orelse)
            self.block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Assign):
            self._value_events(stmt.value)
            attrs = tuple(sorted(_self_attrs(stmt.value)))
            for target in stmt.targets:
                self._bind(target, stmt, attrs)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._value_events(stmt.value)
                self._bind(stmt.target, stmt, tuple(sorted(_self_attrs(stmt.value))))
            return
        if isinstance(stmt, ast.AugAssign):
            self.expr(stmt.value, testing=False)
            attr = _self_attr(stmt.target)
            if attr is not None:
                self.events.append(_Event(_USE, stmt.target, attr=attr))
                self.events.append(_Event(_WRITE, stmt.target, attr=attr))
            return
        # Expr, Return, Raise, Delete, Global, Pass…: evaluate children.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.expr(child, testing=False)

    def _value_events(self, value: ast.expr) -> None:
        """Events for an assignment's right-hand side.

        A *bare* ``self.x`` read being snapshotted into a local (or a
        tuple of such reads — the swap idiom) is a re-read, not an act
        relying on a stale guard, so it emits no USE; the DERIVE the
        caller records carries the attribute instead.  Anything deeper
        (``self.x`` nested in a call's arguments) still counts as a use.
        """
        if _self_attr(value) is not None:
            return
        if isinstance(value, ast.Tuple):
            for element in value.elts:
                if _self_attr(element) is None:
                    self.expr(element, testing=False)
            return
        self.expr(value, testing=False)

    def _bind(self, target: ast.expr, stmt: ast.stmt, attrs: Tuple[str, ...]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.events.append(_Event(_WRITE, target, attr=attr))
        elif isinstance(target, ast.Name):
            self.events.append(_Event(_DERIVE, stmt, local=target.id, attrs=attrs))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, stmt, attrs)
        elif isinstance(target, ast.Attribute):
            # writes through a self attribute (self.x.y = …) touch x
            base = _self_attr(target.value)
            if base is not None:
                self.events.append(_Event(_USE, target, attr=base))
        elif isinstance(target, ast.Subscript):
            # a subscript store (self.x[k] = …) acts on x's contents
            base = _self_attr(target.value)
            if base is not None:
                self.events.append(_Event(_USE, target, attr=base))

    def expr(self, node: ast.expr, testing: bool) -> None:
        """Emit events for one expression, evaluation order (awaits last)."""
        if isinstance(node, ast.Await):
            self.expr(node.value, testing=False)
            self.events.append(_Event(_AWAIT, node))
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is None:
                # a deeper chain (self.x.y): events come from the base
                self.expr(node.value, testing=testing)
                return
            kind = _TEST if testing else _USE
            self.events.append(_Event(kind, node, attr=attr))
            return
        if isinstance(node, ast.Name):
            if testing:
                self.events.append(_Event(_TEST_LOCAL, node, local=node.id))
            return
        if isinstance(node, (ast.Lambda,)):
            return  # deferred body; not executed here
        if isinstance(node, ast.NamedExpr):
            self.expr(node.value, testing=testing)
            if isinstance(node.target, ast.Name):
                self.events.append(
                    _Event(
                        _DERIVE,
                        node,
                        local=node.target.id,
                        attrs=tuple(sorted(_self_attrs(node.value))),
                    )
                )
                if testing:
                    self.events.append(
                        _Event(_TEST_LOCAL, node.target, local=node.target.id)
                    )
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, testing=testing)
            elif isinstance(child, ast.keyword):
                self.expr(child.value, testing=testing)
            elif isinstance(child, ast.comprehension):
                self.expr(child.iter, testing=False)
                for cond in child.ifs:
                    self.expr(cond, testing=False)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` (exactly one level) → ``"x"``; anything else → None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attrs(node: ast.expr) -> Set[str]:
    """Every first-level ``self.<attr>`` read anywhere under ``node``."""
    attrs: Set[str] = set()
    for sub in ast.walk(node):
        attr = _self_attr(sub)
        if attr is not None:
            attrs.add(attr)
    return attrs


@register_rule
class AsyncAtomicityRule(Rule):
    """Flag read-check-write of ``self`` state spanning an ``await``."""

    id = "RPL102"
    title = "check-then-act on shared state must not span an await"
    default_options = {"paths": ["*repro/service/*"]}

    def check(self, project: Project) -> Iterator[Finding]:
        patterns = list(self.opt("paths"))
        for module in project.modules:
            if not any(path_matches(module.rel, pat) for pat in patterns):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        linearizer = _Linearizer()
        linearizer.block(fn.body)

        epoch = 0  # bumped at every await
        # attr → (state, line of the establishing test); state is
        # "fresh" (tested since the last await) or "stale".
        guarded: Dict[str, Tuple[str, int]] = {}
        # local → (attrs it derives from, epoch of derivation)
        derives: Dict[str, Tuple[Tuple[str, ...], int]] = {}

        for event in linearizer.events:
            if event.kind == _AWAIT:
                epoch += 1
                for attr, (state, line) in list(guarded.items()):
                    if state == "fresh":
                        guarded[attr] = ("stale", line)
            elif event.kind == _TEST and event.attr is not None:
                guarded[event.attr] = ("fresh", getattr(event.node, "lineno", 0))
            elif event.kind == _DERIVE and event.local is not None:
                derives[event.local] = (event.attrs, epoch)
            elif event.kind == _TEST_LOCAL and event.local is not None:
                attrs, derived_epoch = derives.get(event.local, ((), -1))
                line = getattr(event.node, "lineno", 0)
                for attr in attrs:
                    if derived_epoch == epoch:
                        guarded[attr] = ("fresh", line)
                    else:
                        # testing a pre-await snapshot: the guard exists
                        # but proves nothing about the current state
                        guarded[attr] = ("stale", line)
            elif event.kind in (_USE, _WRITE) and event.attr is not None:
                state, line = guarded.get(event.attr, ("", 0))
                if state == "stale":
                    verb = "written" if event.kind == _WRITE else "used"
                    yield module.finding(
                        self.id,
                        event.node,
                        f"self.{event.attr} was checked (line {line}) and "
                        f"is {verb} after an intervening 'await' without "
                        "re-validation; another task may have changed it — "
                        "re-check it, or snapshot it into a local after "
                        "the last await and test that",
                    )
                    # report each stale guard once; a re-check resets it
                    guarded.pop(event.attr, None)
                elif event.kind == _WRITE:
                    # an unconditional write re-establishes the state
                    guarded.pop(event.attr, None)
