"""RPL007 — observability timestamps come from injected clocks only.

The tracing layer (``repro.obs``) promises byte-identical exports: when
no wall clock is injected, span timestamps come from a deterministic
step counter, and cycle timestamps come from the simulation's own
counters.  One ``time.monotonic`` smuggled into a tracer or metric call
silently breaks ``repro trace``'s determinism contract — the export
still validates, it just stops being reproducible, which is the worst
kind of regression to notice late.

RPL002 only flags *calls*; a wall-clock *reference* handed in as a
clock argument (``Tracer(wall_clock=time.monotonic)``) sails past it.
This rule closes that gap with two arms:

* **obs-scoped modules** (``paths``, default ``repro/obs/*``): any
  wall-clock attribute reference at all is flagged — the obs layer
  itself performs zero wall reads; every clock it uses is injected.
* **project-wide**: a wall-clock reference (or call) passed as an
  argument to an observability API call (``apis``: tracer/metric
  constructors and observation methods) is flagged wherever it occurs.

Legitimate wall-clock consumers (the service's latency accounting, the
runner's telemetry) inject their clock once at construction time, which
neither arm matches.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    path_matches,
    register_rule,
)

#: Modules whose attributes below denote wall-clock readers.
_WALL_MODULES: Tuple[str, ...] = ("time", "datetime", "date")

#: Attribute names that read a wall clock or calendar date.
_WALL_ATTRS = frozenset({
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "now",
    "utcnow",
    "today",
})


def _wall_reference(node: ast.AST) -> Optional[str]:
    """Dotted name of a wall-clock attribute reference, else None."""
    if not isinstance(node, ast.Attribute):
        return None
    name = dotted_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) >= 2 and parts[-2] in _WALL_MODULES and parts[-1] in _WALL_ATTRS:
        return name
    return None


def _wall_argument(node: ast.AST) -> Optional[str]:
    """Wall-clock reference used as an argument value (ref or call)."""
    direct = _wall_reference(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Call):
        return _wall_reference(node.func)
    return None


@register_rule
class ObsClockRule(Rule):
    """Flag wall-clock sources at observability call sites."""
    id = "RPL007"
    title = "obs timestamps must come from injected clocks"
    default_options = {
        "paths": ["*repro/obs/*"],
        "apis": [
            "Tracer",
            "MetricsRegistry",
            "Histogram",
            "begin",
            "end",
            "event",
            "observe",
            "observe_latency_ms",
            "timer",
        ],
        "allow": [],
    }

    def check(self, project: Project) -> Iterator[Finding]:
        paths = list(self.opt("paths"))
        allow = list(self.opt("allow"))
        apis = set(self.opt("apis"))
        for module in project.modules:
            if any(path_matches(module.rel, pat) for pat in allow):
                continue
            if any(path_matches(module.rel, pat) for pat in paths):
                yield from self._check_obs_module(module)
            else:
                yield from self._check_call_sites(module, apis)

    def _check_obs_module(self, module: Module) -> Iterator[Finding]:
        """Arm one: no wall-clock references anywhere in obs code."""
        for node in ast.walk(module.tree):
            name = _wall_reference(node)
            if name is not None:
                yield module.finding(
                    self.id,
                    node,
                    f"{name} referenced inside the observability layer; "
                    "obs code never reads wall clocks — clocks are "
                    "injected (deterministic-trace invariant)",
                )

    def _check_call_sites(self, module: Module, apis: set) -> Iterator[Finding]:
        """Arm two: no wall-clock values handed to obs API calls."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_name = dotted_name(node.func)
            if fn_name is None or fn_name.split(".")[-1] not in apis:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                name = _wall_argument(value)
                if name is not None:
                    yield module.finding(
                        self.id,
                        value,
                        f"{name} passed to obs API "
                        f"'{fn_name.split('.')[-1]}'; span/metric "
                        "timestamps must come from the injected clock "
                        "or cycle counter, never a wall read at the "
                        "call site",
                    )
