"""RPL103 — RNG seeds must trace back to ``util/rng.derive_seed``.

RPL001 forces every generator construction through ``as_rng`` /
``SeedSequenceFactory``; this rule checks what is *fed* to them.  Ad-hoc
seed material — ``hash(name)``, ``seed + worker_id``, a value of unknown
provenance — silently correlates or collides streams that the paper's
variance study (Table V) assumes are independent.  The blessed
derivation is exactly one function: ``derive_seed(base, *labels)``
(and its :class:`SeedSequenceFactory` wrappers ``seed``/``spawn``/
``generator``), which the taint engine propagates through any depth of
helper functions.

A seed argument is accepted when any of these hold:

* its value carries *blessed* taint (derives from a ``derive_seed`` /
  factory call, possibly through helpers — the interprocedural part);
* it is a literal constant (pinned seeds in entry points) or ``None``
  (the library default);
* it is a bare name or attribute that *names a seed or rng by
  convention* — ``seed``, ``cfg.seed``, ``base_seed``, ``rng`` — i.e. a
  conduit parameter or config field whose lineage is the caller's
  responsibility at *its* construction site.

Everything else — arithmetic on seeds, ``hash()``, ``len()``, time- or
id-derived material — is a finding at the construction call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dotted_name,
    path_matches,
    register_rule,
)

#: Call-name suffixes whose results are blessed seed material.
_BLESSED_CALL_SUFFIXES = ("derive_seed", "seed", "spawn", "generator")

#: Name suffixes that mark a conduit variable/field as seed material.
_SEED_NAMES = ("seed", "rng")


def _blessed_source(dotted: Optional[str]) -> bool:
    """Taint-source predicate handed to the engine: blessed derivations."""
    if dotted is None:
        return False
    last = dotted.split(".")[-1]
    return last in _BLESSED_CALL_SUFFIXES


def _conventional_seed_name(node: ast.expr) -> bool:
    """Bare ``seed``/``cfg.seed``/``base_seed``/``rng`` style spellings."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    name = name.lower().lstrip("_")
    return any(name == s or name.endswith("_" + s) for s in _SEED_NAMES)


@register_rule
class SeedLineageRule(Rule):
    """Flag RNG constructions whose seed does not trace to derive_seed."""

    id = "RPL103"
    title = "RNG seeds must trace back to util/rng.derive_seed"
    scope = "program"
    default_options = {
        # Construction entry points whose first (or ``seed=``) argument
        # is checked.  Matched by dotted-name suffix.
        "constructors": ["as_rng", "SeedSequenceFactory", "default_rng", "RandomState"],
        # Modules exempt from the check (the plumbing itself).
        "allow": ["repro/util/rng.py"],
    }

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.dataflow import SOURCE, TaintEngine

        index = project.program()
        engine = TaintEngine(index, is_source=_blessed_source)
        engine.solve()
        constructors = tuple(self.opt("constructors"))
        allow = list(self.opt("allow"))

        for qual, info in sorted(index.functions.items()):
            if any(path_matches(info.module.rel, pat) for pat in allow):
                continue
            # Cheap syntactic prefilter before paying for an analysis pass.
            if not any(
                self._constructor_name(node, constructors) is not None
                for node in ast.walk(info.node)
                if isinstance(node, ast.Call)
            ):
                continue
            analysis = engine.analyze(qual)
            for event in analysis.calls:
                name = self._constructor_name(event.node, constructors)
                if name is None:
                    continue
                seed_expr, labels = self._seed_argument(event)
                if seed_expr is None:
                    continue  # no seed argument: library default, fine
                if SOURCE in labels:
                    continue  # traced to derive_seed (possibly via helpers)
                if isinstance(seed_expr, ast.Constant):
                    continue  # pinned literal / None
                if _conventional_seed_name(seed_expr):
                    continue  # conduit parameter or config seed field
                yield info.module.finding(
                    self.id,
                    event.node,
                    f"seed argument of {name}(...) does not trace back to "
                    "util/rng.derive_seed (nor is it a pinned literal or a "
                    "declared seed field); derive child seeds with "
                    "derive_seed(base, *labels) instead of ad-hoc material",
                )

    @staticmethod
    def _constructor_name(node: ast.Call, constructors: tuple) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        last = dotted.split(".")[-1]
        return dotted if last in constructors else None

    @staticmethod
    def _seed_argument(event) -> "tuple[Optional[ast.expr], frozenset]":
        """The seed expression and its taint labels, or ``(None, ∅)``."""
        node = event.node
        if node.args:
            labels = event.arg_labels[0] if event.arg_labels else frozenset()
            return node.args[0], labels
        for kw in node.keywords:
            if kw.arg in ("seed", "base_seed"):
                # keyword labels are not recorded on the event; fall back
                # to the syntactic checks plus a direct blessed-call test.
                dotted = dotted_name(kw.value.func) if isinstance(kw.value, ast.Call) else None
                labels = frozenset({"SOURCE"}) if _blessed_source(dotted) else frozenset()
                return kw.value, labels
        return None, frozenset()
