"""RPL006 — no blocking calls inside ``async def`` service code.

The mapping service promises that CPU-bound solves never stall the
event loop (they go through the micro-batcher to a process pool) and
that every await point yields promptly.  One ``time.sleep`` or
synchronous ``subprocess.run`` inside a coroutine freezes *every*
connection the loop is multiplexing — the failure mode is global, not
local, which is why it gets a rule instead of a review note.

Flagged inside ``async def`` bodies (nested synchronous ``def``s are
skipped — they run wherever they are called, typically an executor):

* ``time.sleep`` — use ``await asyncio.sleep``.
* Synchronous subprocess launches (``subprocess.run/call/check_call/
  check_output/Popen``, ``os.system``, ``os.popen``) — use
  ``asyncio.create_subprocess_exec``.
* Synchronous network IO (``requests.*``, ``urllib.request.urlopen``,
  ``socket.create_connection``) — use asyncio streams.
* Bare ``open(...)`` / ``input(...)`` — file IO belongs in an executor
  (``loop.run_in_executor``), prompts have no place in a server.

Scoped by the ``paths`` option (default: the service package) because
the rest of the repo is deliberately synchronous.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    path_matches,
    register_rule,
)

#: (module, attribute) call suffixes that block the event loop, with the
#: async replacement named in the finding.  "*" matches any attribute.
_BLOCKING_SUFFIXES: Tuple[Tuple[str, str, str], ...] = (
    ("time", "sleep", "await asyncio.sleep(...)"),
    ("subprocess", "run", "asyncio.create_subprocess_exec"),
    ("subprocess", "call", "asyncio.create_subprocess_exec"),
    ("subprocess", "check_call", "asyncio.create_subprocess_exec"),
    ("subprocess", "check_output", "asyncio.create_subprocess_exec"),
    ("subprocess", "Popen", "asyncio.create_subprocess_exec"),
    ("os", "system", "asyncio.create_subprocess_shell"),
    ("os", "popen", "asyncio.create_subprocess_shell"),
    ("requests", "*", "an executor or asyncio streams"),
    ("request", "urlopen", "an executor or asyncio streams"),
    ("socket", "create_connection", "asyncio.open_connection"),
)

#: Bare-name calls that block (no attribute chain involved).
_BLOCKING_NAMES: Tuple[Tuple[str, str], ...] = (
    ("open", "loop.run_in_executor for file IO"),
    ("input", "nothing — servers do not prompt"),
    ("urlopen", "an executor or asyncio streams"),
)


def _async_body_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes in ``fn``'s body, not descending into nested defs.

    Nested synchronous functions execute wherever they are *called*
    (usually handed to an executor), and nested ``async def``s are
    visited by the caller as coroutines in their own right — both would
    double-report or false-positive if walked from here.
    """
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class BlockingAsyncRule(Rule):
    """Flag event-loop-blocking calls in ``async def`` service code."""
    id = "RPL006"
    title = "no blocking calls inside async service code"
    default_options = {"paths": ["*repro/service/*"], "allow": []}

    def check(self, project: Project) -> Iterator[Finding]:
        paths = list(self.opt("paths"))
        allow = list(self.opt("allow"))
        for module in project.modules:
            if not any(path_matches(module.rel, pat) for pat in paths):
                continue
            if any(path_matches(module.rel, pat) for pat in allow):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_def(module, node)

    def _check_async_def(
        self, module: Module, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in _async_body_calls(fn):
            name = dotted_name(call.func)
            if name is None:
                continue
            parts = name.split(".")
            hit = None
            if len(parts) >= 2:
                mod, attr = parts[-2], parts[-1]
                for ban_mod, ban_attr, instead in _BLOCKING_SUFFIXES:
                    if mod == ban_mod and (ban_attr == "*" or attr == ban_attr):
                        hit = instead
                        break
            else:
                for ban_name, instead in _BLOCKING_NAMES:
                    if parts[0] == ban_name:
                        hit = instead
                        break
            if hit is not None:
                yield module.finding(
                    self.id,
                    call,
                    f"{name}(...) blocks the event loop inside async "
                    f"'{fn.name}' — every connection stalls; use {hit}",
                )
