"""RPL001 — all randomness must route through ``repro/util/rng.py``.

Every stochastic component in the simulator derives its stream from the
``SeedSequence`` helpers (``as_rng`` / ``derive_seed`` /
``SeedSequenceFactory``).  A direct ``np.random.default_rng(...)`` or a
stdlib ``random`` import anywhere else silently creates an unmanaged
stream: reruns of "the same" experiment can then draw differently, and
the paper's SM/HM comparison (PAPER.md §V) stops being a controlled one.

Allowed constructions live only in the modules matched by the ``allow``
option (default: ``util/rng.py`` itself).  ``np.random.Generator`` used
as a *type annotation* is fine and not flagged — only constructor and
legacy-API *calls* are.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    path_matches,
    register_rule,
)

#: numpy.random entry points that mint or reseed streams.
_NP_RANDOM_CALLS = frozenset(
    {
        "default_rng",
        "RandomState",
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
    }
)


@register_rule
class RandomnessRoutingRule(Rule):
    """Flag unmanaged randomness: ``random`` imports and ``np.random.*`` calls."""
    id = "RPL001"
    title = "randomness must route through util/rng.py"
    default_options = {"allow": ["repro/util/rng.py"]}

    def check(self, project: Project) -> Iterator[Finding]:
        allow: List[str] = list(self.opt("allow"))
        for module in project.modules:
            if any(path_matches(module.rel, pat) for pat in allow):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield module.finding(
                            self.id,
                            node,
                            "stdlib 'random' import; use repro.util.rng "
                            "(as_rng / derive_seed / SeedSequenceFactory)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield module.finding(
                        self.id,
                        node,
                        "stdlib 'random' import; use repro.util.rng "
                        "(as_rng / derive_seed / SeedSequenceFactory)",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) >= 3
                    and parts[-3] in ("np", "numpy")
                    and parts[-2] == "random"
                    and parts[-1] in _NP_RANDOM_CALLS
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"direct {name}(...) constructs an unmanaged RNG "
                        "stream; derive it via repro.util.rng instead",
                    )
