"""Built-in lint rules.

Importing this package registers every rule with the framework
registry; :func:`repro.analysis.core.all_rules` does that import, so
rule modules must stay import-for-side-effect safe (no work at import
time beyond class definition).
"""

from repro.analysis.rules import (  # noqa: F401  (import-for-side-effect)
    rpl001_rng,
    rpl002_entropy,
    rpl003_parity,
    rpl004_config,
    rpl005_hygiene,
    rpl006_blocking,
    rpl007_obs_clock,
    rpl008_specs,
    rpl101_taint,
    rpl102_atomicity,
    rpl103_seed_lineage,
    rpl104_purity,
)

__all__ = [
    "rpl001_rng",
    "rpl002_entropy",
    "rpl003_parity",
    "rpl004_config",
    "rpl005_hygiene",
    "rpl006_blocking",
    "rpl007_obs_clock",
    "rpl008_specs",
    "rpl101_taint",
    "rpl102_atomicity",
    "rpl103_seed_lineage",
    "rpl104_purity",
]
