"""RPL004 — every simulator-config field must be read somewhere.

A ``SimConfig`` field that nothing reads is either dead weight or — the
dangerous case — a knob someone *believes* changes the simulation while
both engines silently ignore it (the config hash would still change, so
the result cache would dutifully store distinct-but-identical entries).

The check is project-wide: a field of any class named in
``config-classes`` must appear as an attribute *read* (``<x>.field``
with Load context) in at least one module outside the defining class
body.  Keyword re-construction (``dataclasses.replace(cfg, field=...)``)
does not count as a read on purpose: copying a knob around is not using
it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    dataclass_fields,
    register_rule,
)


@register_rule
class UnusedConfigFieldRule(Rule):
    """Flag config-dataclass fields that no module in the project reads."""
    id = "RPL004"
    title = "config dataclass fields must be read by the simulator"
    scope = "program"
    default_options = {"config-classes": ["SimConfig", "NoiseConfig"]}

    def check(self, project: Project) -> Iterator[Finding]:
        class_names: Set[str] = set(self.opt("config-classes"))

        # Pass 1: find the config classes and their fields.
        defs: List[Tuple[Module, ast.ClassDef, List[str]]] = []
        for module in project.primary_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name in class_names:
                    fields = [name for name, _ann, _d in dataclass_fields(node)]
                    defs.append((module, node, fields))

        if not defs:
            return

        # Pass 2: collect every attribute read in the project, excluding
        # the defining class bodies (self.field inside __post_init__ must
        # not count as "the simulator reads it").
        class_spans: Dict[str, List[Tuple[int, int]]] = {}
        for module, cls, _fields in defs:
            span = (cls.lineno, cls.end_lineno or cls.lineno)
            class_spans.setdefault(module.rel, []).append(span)

        # Primary modules only: a field read *only in a test* is not
        # wired into the simulator — it is precisely the dead knob this
        # rule exists to catch.
        reads: Set[str] = set()
        for module in project.primary_modules:
            spans = class_spans.get(module.rel, [])
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                line = node.lineno
                if any(lo <= line <= hi for lo, hi in spans):
                    continue
                reads.add(node.attr)

        for module, cls, fields in defs:
            for field_name in fields:
                if field_name not in reads:
                    yield module.finding(
                        self.id,
                        cls,
                        f"{cls.name}.{field_name} is never read anywhere "
                        "under the linted tree — dead knob, or a setting "
                        "both engines silently ignore",
                    )
