"""RPL005 — counter/exception/default-argument hygiene.

Three small checks that each guard a way determinism or engine parity
has historically rotted in simulators:

* **Float accumulation into integer counters.**  The differential
  harness compares counters with ``==``; one ``stats.x += n / 2`` turns
  a counter float and bit-identity into approximate identity.  Flagged:
  ``+=`` onto a stats-like attribute whose value expression contains a
  float literal, a ``float(...)`` call, or true division.
* **Mutable default arguments.**  A ``def f(x, acc=[])`` default is
  shared across calls — cross-run state that survives ``reset()`` and
  breaks replay determinism.
* **Bare ``except:``.**  Swallows ``KeyboardInterrupt``/``SystemExit``
  and hides the difference between "cache miss" and "cache bug"; the
  tolerant-read paths must name what they tolerate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.core import Finding, Module, Project, Rule, counter_target, register_rule

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})


def _is_floatish(node: ast.AST) -> bool:
    """Whether an expression statically looks float-valued."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register_rule
class HygieneRule(Rule):
    """Flag float-into-int counter accumulation, mutable defaults, bare except."""
    id = "RPL005"
    title = "counter/exception/default-argument hygiene"
    default_options = {"extra-counters": ["l1_sibling_invalidations"]}

    def check(self, project: Project) -> Iterator[Finding]:
        extra = tuple(self.opt("extra-counters"))
        for module in project.modules:
            yield from self._check_module(module, extra)

    def _check_module(self, module: Module, extra: Tuple[str, ...]) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                counter = counter_target(node.target, extra)
                if counter is not None and _is_floatish(node.value):
                    yield module.finding(
                        self.id,
                        node,
                        f"float accumulation into integer counter "
                        f"'{counter}' — bit-identical engine comparison "
                        "requires integer counters",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield module.finding(
                            self.id,
                            default,
                            f"mutable default argument in '{node.name}' — "
                            "shared across calls, so state leaks between "
                            "runs",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield module.finding(
                    self.id,
                    node,
                    "bare 'except:' — name the exceptions this path "
                    "tolerates (it also swallows KeyboardInterrupt)",
                )
