"""RPL104 — callables shipped into process pools must be pure.

The byte-identical solve contract (DESIGN.md §11) survives a
``ProcessPoolExecutor`` hop only because the worker entry point is a
frozen, picklable, module-level function whose behaviour depends on its
arguments alone.  A lambda will not pickle; a bound method drags its
instance across the fork; a worker that mutates module globals computes
different answers depending on which pool process it lands in and what
ran there before.

The rule finds pool submission sites — ``loop.run_in_executor(ex, fn,
…)`` and ``pool.submit(fn, …)`` where the receiver names an
executor/pool — and checks the submitted callable:

* a lambda or locally-defined closure is rejected outright;
* a dynamically-bound callable (``self._solve_batch_fn``) cannot be
  verified statically and is a finding — bind a module-level function,
  or acknowledge the injection seam with a justified inline ignore;
* a resolvable module-level function is checked transitively over the
  call graph: ``global``/``nonlocal`` statements and ``self``-state
  writes anywhere in its closure are impurities.  Process-local
  accessor singletons that are *designed* to be per-process (fault
  injector, tracer, metrics registry) are exempted via the
  ``allow-calls`` option — the closure walk does not descend into them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Project, Rule, dotted_name, register_rule

#: Receiver-name fragments that mark a ``.submit`` call as a pool hop.
_POOL_RECEIVER_HINTS = ("pool", "executor")


def _submission(call: ast.Call) -> Optional[Tuple[str, int]]:
    """``(description, index of the callable argument)`` for pool hops.

    ``loop.run_in_executor(executor, fn, *args)`` → index 1;
    ``<pool-ish>.submit(fn, *args)`` → index 0.  ``.submit`` on
    receivers that do not name a pool/executor (the request
    micro-batcher) is not a process hop and is skipped.
    """
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[-1] == "run_in_executor":
        # A literal None executor is the event loop's default *thread*
        # pool: same process, so purity and picklability do not apply.
        if call.args and isinstance(call.args[0], ast.Constant) and call.args[0].value is None:
            return None
        return dotted, 1
    if parts[-1] == "submit" and len(parts) >= 2:
        receiver = parts[-2].lower()
        if any(hint in receiver for hint in _POOL_RECEIVER_HINTS):
            return dotted, 0
    return None


@register_rule
class ProcessPurityRule(Rule):
    """Flag impure or unverifiable callables crossing the process boundary."""

    id = "RPL104"
    title = "process-pool workers must be pure module-level functions"
    scope = "program"
    default_options = {
        # Callee-name suffixes the purity walk treats as opaque-but-safe:
        # accessors for deliberately process-local singletons.
        "allow-calls": [],
    }

    def check(self, project: Project) -> Iterator[Finding]:
        index = project.program()
        allow = tuple(self.opt("allow-calls"))
        for qual, sites in sorted(index.call_sites.items()):
            info = index.functions[qual]
            for site in sites:
                sub = _submission(site.node)
                if sub is None:
                    continue
                described, fn_index = sub
                if fn_index >= len(site.node.args):
                    continue
                fn_expr = site.node.args[fn_index]
                yield from self._check_callable(
                    project, index, info, site.node, described, fn_expr, allow
                )

    def _check_callable(
        self, project, index, info, call, described, fn_expr, allow
    ) -> Iterator[Finding]:
        module = info.module
        if isinstance(fn_expr, ast.Lambda):
            yield module.finding(
                self.id,
                fn_expr,
                f"lambda submitted to {described}(...); pool workers must "
                "be module-level functions (lambdas do not pickle and "
                "capture ambient state)",
            )
            return
        dotted = dotted_name(fn_expr)
        if dotted is None:
            return  # expression call results etc.: out of scope
        target = index.resolve(
            _module_name(index, module), dotted, cls=info.cls
        )
        if target is None:
            if dotted.startswith("self.") or "." not in dotted:
                yield module.finding(
                    self.id,
                    fn_expr,
                    f"{dotted} submitted to {described}(...) cannot be "
                    "purity-checked statically (dynamically-bound "
                    "callable); bind a module-level worker function, or "
                    "acknowledge the injection seam with "
                    "'# repro-lint: ignore[RPL104] -- <why>'",
                )
            return  # external library callable: nothing to verify
        for offender, reason, node in self._impurities(index, target, allow):
            yield module.finding(
                self.id,
                call,
                f"{dotted} submitted to {described}(...) is not "
                f"cross-process pure: {offender} {reason}",
            )

    def _impurities(
        self, index, root: str, allow: Tuple[str, ...]
    ) -> Iterator[Tuple[str, str, ast.AST]]:
        """Walk the call-graph closure of ``root`` looking for impurity."""
        seen: Set[str] = set()
        frontier: List[str] = [root]
        while frontier:
            qual = frontier.pop(0)
            if qual in seen or qual not in index.functions:
                continue
            seen.add(qual)
            info = index.functions[qual]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    yield qual, (
                        "mutates module globals "
                        f"('global {', '.join(node.names)}'), so results "
                        "depend on which pool process runs the task"
                    ), node
                elif isinstance(node, ast.Nonlocal):
                    yield qual, "captures and mutates enclosing scope", node
            for site in index.call_sites.get(qual, ()):
                callee = site.callee
                if callee is None:
                    continue
                if any(callee.split(".")[-1] == a or callee.endswith(a) for a in allow):
                    continue  # sanctioned process-local accessor
                target = callee
                if target in index.classes:
                    init = f"{target}.__init__"
                    target = init if init in index.functions else target
                if target in index.functions and target not in seen:
                    frontier.append(target)


def _module_name(index, module) -> str:
    from repro.analysis.program import module_name_for

    return module_name_for(module.rel)
