"""RPL101 — no wall-clock/OS-entropy *flows* into the deterministic core.

RPL002 bans the call sites (`time.time()` inside ``src/repro``), but a
value can be laundered: a helper outside the protected packages reads
the clock, returns it, and a caller hands the float to ``core/`` or
``mapping/`` as an innocent argument.  This rule runs the
interprocedural taint engine (:mod:`repro.analysis.dataflow`) over the
whole-program index and reports the two ways entropy can *enter* a
protected package:

* a call inside a protected module whose resolved callee's summary says
  the return value derives from a clock/entropy read (the laundering
  helper), and
* a call site anywhere in the program that passes a tainted argument
  into a function *defined in* a protected module (the actual-taint
  fixpoint's witness).

Direct reads inside protected code are RPL002's findings and are not
duplicated here.  The injected-clock pattern — storing
``time.monotonic`` itself, a function reference, never a call result —
is deliberately not a source, so the sanctioned ``clock=``-injection
sites stay clean.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.core import Finding, Project, Rule, path_matches, register_rule


@register_rule
class EntropyTaintRule(Rule):
    """Flag entropy-tainted values flowing into protected packages."""

    id = "RPL101"
    title = "no wall-clock/OS-entropy dataflow into core/machine/mapping/obs"
    scope = "program"
    default_options = {
        # Packages whose inputs must be entropy-free.  Matched with the
        # same semantics as per-file-ignores patterns.
        "protected": [
            "*repro/core/*",
            "*repro/machine/*",
            "*repro/mapping/*",
            "*repro/obs/*",
        ],
    }

    def _is_protected(self, rel: str) -> bool:
        return any(path_matches(rel, pat) for pat in self.opt("protected"))

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.dataflow import SOURCE, TaintEngine

        index = project.program()
        engine = TaintEngine(index)
        engine.solve()

        # Arm 1: laundering helpers called from inside a protected module.
        for qual, info in index.functions.items():
            if not self._is_protected(info.module.rel):
                continue
            analysis = engine.analyze(qual)
            for event in analysis.calls:
                if engine.is_source(event.dotted):
                    continue  # direct read: RPL002's finding, not ours
                if event.callee is None:
                    continue
                if engine.summary(event.callee).returns_source:
                    yield info.module.finding(
                        self.id,
                        event.node,
                        f"call to {event.dotted or event.callee} returns a "
                        "wall-clock/OS-entropy-derived value inside "
                        f"{qual}; protected packages must be pure "
                        "functions of their configuration",
                    )

        # Arm 2: tainted arguments crossing into a protected function.
        for qual, taints in sorted(engine.actual_taints.items()):
            info = index.functions[qual]
            if not self._is_protected(info.module.rel):
                continue
            params = info.params
            for position, tainted in enumerate(taints):
                if not tainted:
                    continue
                witness = engine.param_witness(qual, position)
                if witness is None:
                    continue
                caller = index.functions[witness.caller]
                param = params[position] if position < len(params) else f"#{position}"
                yield caller.module.finding(
                    self.id,
                    witness.node,
                    "argument carries wall-clock/OS-entropy taint into "
                    f"{qual} (parameter {param!r}); derive the value from "
                    "configuration or the injected clock instead",
                )
