"""RPL008 — bench scripts must not hand-roll sweeps a spec already covers.

The declarative experiment platform (``repro.experiments.specs``) exists
so that a benchmark's grid — kernels × topologies × mechanisms × seeds —
lives in one reviewable TOML file under ``benchmarks/specs/``, executed
by one memoizing runner.  A ``bench_*.py`` that loops over simulator or
experiment configurations by hand forks that machinery: its cells bypass
the result cache, its grid drifts from the spec's, and the differential
goldens stop covering what actually runs.

Two findings, by porting state (the spec for ``bench_<name>.py`` is
``<specs-dir>/<name>.toml``):

* the spec **exists** — any hand-rolled sweep is flagged, allowlisted or
  not: the port happened, the loop is a regression;
* the spec **does not exist** and the script is not in ``allow`` — the
  sweep is flagged as un-ported work.  ``allow`` is the explicit queue
  of not-yet-ported scripts, so new hand-rolled sweeps cannot land
  silently.

A "hand-rolled sweep" is a loop or comprehension that constructs or
invokes one of the ``grid-calls`` names (config classes and runner entry
points) in its body — the signature of enumerating simulation cells
imperatively.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator, List, Set

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    path_matches,
    register_rule,
)

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def spec_name_for(rel: str) -> str:
    """Spec stem for a bench script: ``bench_fig4.py`` -> ``fig4``."""
    stem = PurePosixPath(rel).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _grid_calls_under(node: ast.AST, names: Set[str]) -> Iterator[ast.Call]:
    """Call nodes under ``node`` whose callee matches a grid name.

    Nested function/class definitions are skipped: a helper *defined*
    inside a loop body runs when called, not per iteration, and flagging
    it would misattribute the sweep.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None and name.split(".")[-1] in names:
                yield child
        stack.extend(ast.iter_child_nodes(child))


@register_rule
class HandRolledSweepRule(Rule):
    """Flag imperative config sweeps in bench scripts."""
    id = "RPL008"
    title = "bench sweeps belong in declarative specs"
    default_options = {
        "paths": ["benchmarks/bench_*.py"],
        #: Not-yet-ported scripts (path patterns): exempt only while no
        #: spec exists for them.
        "allow": [],
        #: Where ported specs live, relative to the project root.
        "specs-dir": "benchmarks/specs",
        #: Spec stems treated as existing regardless of the filesystem
        #: (fixture corpora have no specs directory).
        "specs": [],
        #: Constructing/calling any of these inside a loop body is the
        #: hand-rolled-sweep signature.
        "grid-calls": ["ExperimentConfig", "SimConfig", "ExperimentRunner",
                       "Simulator", "run_suite"],
    }

    def check(self, project: Project) -> Iterator[Finding]:
        paths = list(self.opt("paths"))
        allow = list(self.opt("allow"))
        names = set(self.opt("grid-calls"))
        declared = set(self.opt("specs"))
        specs_dir = project.root / str(self.opt("specs-dir"))
        for module in project.modules:
            if not any(path_matches(module.rel, pat) for pat in paths):
                continue
            spec = spec_name_for(module.rel)
            ported = spec in declared or (specs_dir / f"{spec}.toml").is_file()
            allowed = any(path_matches(module.rel, pat) for pat in allow)
            if not ported and allowed:
                continue
            yield from self._check_module(module, spec, ported)

    def _check_module(
        self, module: Module, spec: str, ported: bool
    ) -> Iterator[Finding]:
        names = set(self.opt("grid-calls"))
        specs_dir = self.opt("specs-dir")
        seen: Set[tuple] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, _LOOPS):
                calls = _grid_calls_under(node, names)
            elif isinstance(node, _COMPREHENSIONS):
                calls = _grid_calls_under(node, names)
            else:
                continue
            for call in calls:
                site = (call.lineno, call.col_offset)
                if site in seen:
                    continue  # nested loops: one finding per call site
                seen.add(site)
                what = dotted_name(call.func).split(".")[-1]
                if ported:
                    message = (
                        f"hand-rolled sweep over {what} but spec "
                        f"'{spec}.toml' exists — drive it through "
                        f"run_bench_spec / run_spec instead"
                    )
                else:
                    message = (
                        f"hand-rolled sweep over {what} — port this bench "
                        f"to a declarative spec under {specs_dir}/"
                    )
                yield module.finding(self.id, call, message)
