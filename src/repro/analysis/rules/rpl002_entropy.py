"""RPL002 — no wall-clock or OS-entropy inputs in simulation code.

A result that depends on ``time.time()``, ``os.urandom()`` or a UUID is
not a function of its configuration any more: the experiment cache keys
on canonicalized configs (``experiments/cache.py``), and the paper's
variance study (Table V) attributes run-to-run spread to the *modeled*
OS noise, not to hidden host entropy.  Harness-side telemetry that
legitimately measures wall time (e.g. the runner's ``wall_seconds``)
is exempted via a per-file ignore in pyproject, never inline.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.core import Finding, Module, Project, Rule, dotted_name, register_rule

#: (module, attribute) call suffixes that read wall clocks or OS entropy.
#: A trailing "*" matches any attribute of the module.
_BANNED_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "*"),
    ("secrets", "*"),
)


@register_rule
class EntropySourceRule(Rule):
    """Flag wall-clock and OS-entropy reads inside the simulator."""
    id = "RPL002"
    title = "no wall-clock or OS-entropy calls in simulation code"
    default_options = {"allow": []}

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.core import path_matches

        allow = list(self.opt("allow"))
        for module in project.modules:
            if any(path_matches(module.rel, pat) for pat in allow):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if len(parts) < 2:
                    continue
                mod, attr = parts[-2], parts[-1]
                for ban_mod, ban_attr in _BANNED_SUFFIXES:
                    if mod == ban_mod and (ban_attr == "*" or attr == ban_attr):
                        yield module.finding(
                            self.id,
                            node,
                            f"{name}(...) reads wall-clock/OS entropy; "
                            "results must be pure functions of their "
                            "configuration (determinism invariant)",
                        )
                        break

    def _check_import(self, module: Module, node: ast.AST) -> Iterator[Finding]:
        names = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module in ("uuid", "secrets"):
                names = [node.module]
        for name in names:
            if name in ("uuid", "secrets"):
                yield module.finding(
                    self.id,
                    node,
                    f"'{name}' import: OS-entropy identifiers have no "
                    "place in a deterministic simulation pipeline",
                )
