"""RPL003 — scalar/batched engine counter parity.

PR 1's batched engine (``mem/hierarchy.py:access_batch``) mirrors every
protocol counter in locals and flushes them once per quantum; the
differential harness proves the two engines bit-identical *dynamically*.
This rule proves the cheaper static half: the **set** of stats counters
touched by the scalar protocol code equals the set flushed by the
batched fast path, so a counter added to one engine without the other
fails lint before any simulation runs.

Two sub-checks:

1. **Counter-set parity.**  Within the configured ``scalar-modules``,
   every ``+=`` onto a stats-like attribute (``*.stats.X``,
   ``*_stats.X``, plus ``extra-counters``) *outside* functions named in
   ``batched-functions`` forms the scalar counter set; the same
   collection *inside* those functions forms the batched set.  Any
   symmetric difference is a finding.

2. **SimResult wiring.**  The int-annotated fields of the ``SimResult``
   dataclass (``sim-result-module`` / ``sim-result-class``) must each be
   passed explicitly wherever a ``SimResult(...)`` is constructed in
   that module — a counter field added with a default of 0 but never
   populated would otherwise read as "measured: zero" forever.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    Rule,
    counter_target,
    dataclass_fields,
    dotted_name,
    path_matches,
    register_rule,
)


def _collect_counters(
    tree: ast.AST,
    batched_names: Set[str],
    extra: Tuple[str, ...],
) -> Tuple[Dict[str, ast.AST], Dict[str, ast.AST], List[ast.FunctionDef]]:
    """Split counter increments into (scalar, batched) maps.

    Returns ``(scalar, batched, batched_defs)`` where each map takes a
    counter name to the first AST node incrementing it on that side.
    """
    scalar: Dict[str, ast.AST] = {}
    batched: Dict[str, ast.AST] = {}
    batched_defs: List[ast.FunctionDef] = []
    batched_nodes: Set[int] = set()

    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in batched_names:
            batched_defs.append(node)
            for sub in ast.walk(node):
                batched_nodes.add(id(sub))

    for node in ast.walk(tree):
        if not isinstance(node, ast.AugAssign) or not isinstance(node.op, ast.Add):
            continue
        name = counter_target(node.target, extra)
        if name is None:
            continue
        side = batched if id(node) in batched_nodes else scalar
        side.setdefault(name, node)
    return scalar, batched, batched_defs


@register_rule
class EngineParityRule(Rule):
    """Require the scalar and batched engines to bump identical counter sets,
    and every int field of the result dataclass to be wired at construction."""
    id = "RPL003"
    title = "scalar and batched engines must touch the same counter set"
    scope = "program"
    default_options = {
        "scalar-modules": [
            "repro/mem/cache.py",
            "repro/mem/coherence.py",
            "repro/mem/hierarchy.py",
        ],
        "batched-functions": ["access_batch"],
        "extra-counters": ["l1_sibling_invalidations"],
        "sim-result-module": "repro/machine/simulator.py",
        "sim-result-class": "SimResult",
    }

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_counter_parity(project)
        yield from self._check_simresult_wiring(project)

    # -- sub-check 1: counter-set parity --------------------------------------

    def _check_counter_parity(self, project: Project) -> Iterator[Finding]:
        patterns: List[str] = list(self.opt("scalar-modules"))
        batched_names = set(self.opt("batched-functions"))
        extra = tuple(self.opt("extra-counters"))

        modules = [
            m
            for m in project.modules
            if any(path_matches(m.rel, pat) for pat in patterns)
        ]
        if not modules:
            return

        scalar: Dict[str, Tuple[Module, ast.AST]] = {}
        batched: Dict[str, Tuple[Module, ast.AST]] = {}
        batched_defs: List[Tuple[Module, ast.FunctionDef]] = []
        for module in modules:
            s, b, defs = _collect_counters(module.tree, batched_names, extra)
            for name, node in s.items():
                scalar.setdefault(name, (module, node))
            for name, node in b.items():
                batched.setdefault(name, (module, node))
            batched_defs.extend((module, d) for d in defs)

        if not batched_defs:
            # No batched engine in scope (e.g. linting a subset): parity
            # is vacuous, not violated.
            return

        anchor_module, anchor_def = batched_defs[0]
        for name in sorted(set(scalar) - set(batched)):
            src_module, src_node = scalar[name]
            yield anchor_module.finding(
                self.id,
                anchor_def,
                f"counter '{name}' is incremented by the scalar engine "
                f"({src_module.rel}:{src_node.lineno}) but never flushed "
                f"by the batched engine '{anchor_def.name}' — the "
                "differential harness would catch this at runtime; fix "
                "it here first",
            )
        for name in sorted(set(batched) - set(scalar)):
            mod, node = batched[name]
            yield mod.finding(
                self.id,
                node,
                f"counter '{name}' is updated only inside the batched "
                "engine; the scalar reference path never touches it, so "
                "the engines cannot stay bit-identical",
            )

    # -- sub-check 2: SimResult construction wiring ---------------------------

    def _check_simresult_wiring(self, project: Project) -> Iterator[Finding]:
        pattern: str = self.opt("sim-result-module")
        class_name: str = self.opt("sim-result-class")
        for module in project.find_modules(pattern):
            cls = next(
                (
                    n
                    for n in ast.walk(module.tree)
                    if isinstance(n, ast.ClassDef) and n.name == class_name
                ),
                None,
            )
            if cls is None:
                continue
            int_fields = [
                name
                for name, ann, _default in dataclass_fields(cls)
                if ann == "int"
            ]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None or name.split(".")[-1] != class_name:
                    continue
                passed = {kw.arg for kw in node.keywords if kw.arg is not None}
                if any(kw.arg is None for kw in node.keywords):
                    continue  # **kwargs construction: not statically checkable
                for field_name in int_fields:
                    if field_name not in passed:
                        yield module.finding(
                            self.id,
                            node,
                            f"{class_name}(...) does not populate counter "
                            f"field '{field_name}'; every int field must be "
                            "wired explicitly so both engines report it",
                        )
