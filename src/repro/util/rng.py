"""Deterministic random-number plumbing.

Every stochastic component in the simulator accepts either an integer seed
or a :class:`numpy.random.Generator`.  ``as_rng`` normalizes both to a
Generator; ``derive_seed`` deterministically derives child seeds so that
independent components (per-thread workload streams, per-run OS placements)
never share a stream by accident.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0xC0FFEE


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed default seed (the whole library is
    reproducible by default); an existing Generator is passed through.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be int, Generator or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a sequence of labels.

    The derivation is a stable hash, so ``derive_seed(7, "thread", 3)``
    is the same in every process and Python version, unlike ``hash()``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(base).to_bytes(16, "little", signed=True))
    for label in labels:
        h.update(repr(label).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


class SeedSequenceFactory:
    """Hand out deterministic child generators keyed by label.

    >>> f = SeedSequenceFactory(42)
    >>> r1 = f.generator("thread", 0)
    >>> r2 = f.generator("thread", 1)

    Repeated requests for the same label return *fresh* generators with the
    same underlying seed, so replaying a component replays its randomness.
    """

    def __init__(self, base_seed: RngLike = None):
        if isinstance(base_seed, np.random.Generator):
            # Draw one stable integer from the generator to anchor children.
            base_seed = int(base_seed.integers(0, 2**63 - 1))
        self.base_seed = int(base_seed) if base_seed is not None else _DEFAULT_SEED

    def seed(self, *labels: object) -> int:
        """Deterministic child seed for ``labels``."""
        return derive_seed(self.base_seed, *labels)

    def generator(self, *labels: object) -> np.random.Generator:
        """Fresh generator for ``labels`` (same labels -> same stream)."""
        return np.random.default_rng(self.seed(*labels))

    def spawn(self, *labels: object) -> "SeedSequenceFactory":
        """Child factory rooted at ``labels``."""
        return SeedSequenceFactory(self.seed(*labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(base_seed={self.base_seed})"
