"""Shared utilities: seeded RNG plumbing, statistics, ASCII rendering, validation.

These helpers are intentionally dependency-light (numpy only) and are used by
every other subpackage.  Nothing in here knows about TLBs, caches, or
thread mapping.
"""

from repro.util.rng import SeedSequenceFactory, as_rng, derive_seed
from repro.util.stats import (
    RunningStats,
    confidence_interval95,
    geometric_mean,
    normalized,
    percent_change,
    summarize,
)
from repro.util.render import (
    ascii_heatmap,
    bar_chart,
    format_table,
    shade_char,
)
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "SeedSequenceFactory",
    "as_rng",
    "derive_seed",
    "RunningStats",
    "confidence_interval95",
    "geometric_mean",
    "normalized",
    "percent_change",
    "summarize",
    "ascii_heatmap",
    "bar_chart",
    "format_table",
    "shade_char",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
