"""Argument-validation helpers with consistent error messages.

Hardware-model parameters (cache geometry, TLB geometry, page sizes) have
structural constraints — power-of-two sizes, positive counts — that are
easy to violate silently.  These helpers fail fast with the parameter name
in the message.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two (sizes, ways, pages)."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0.0 <= value <= 1.0``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: Number, lo: Number, hi: Number) -> Number:
    """Require ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
