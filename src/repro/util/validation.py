"""Argument-validation helpers with consistent error messages.

Hardware-model parameters (cache geometry, TLB geometry, page sizes) have
structural constraints — power-of-two sizes, positive counts — that are
easy to violate silently.  These helpers fail fast with the parameter name
in the message.

Array-shaped inputs (communication matrices arriving from CSV files or
the mapping service's HTTP boundary) get the same treatment: the
``check_*_array`` helpers reject NaN/Inf, negative cells and non-square
shapes with a typed :class:`ValidationError`, so callers can distinguish
"the input is garbage" (reject the request) from a programming error.
"""

from __future__ import annotations

from typing import Union

import numpy as np

Number = Union[int, float]


class ValidationError(ValueError):
    """An input failed structural validation (bad shape, NaN/Inf, sign).

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; boundary layers (the mapping service, CSV
    loaders) catch this type specifically to turn garbage input into a
    clean client-facing error instead of propagating it into the solver.
    """


def check_square_array(name: str, array: "np.ndarray") -> "np.ndarray":
    """Require a 2-D square float array; returns it as float64."""
    a = np.asarray(array, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValidationError(
            f"{name} must be a square 2-D array, got shape {a.shape}"
        )
    return a


def check_finite_array(name: str, array: "np.ndarray") -> "np.ndarray":
    """Reject NaN and ±Inf cells (they would silently poison any solve)."""
    a = np.asarray(array, dtype=np.float64)
    if not np.all(np.isfinite(a)):
        bad = int(np.size(a) - np.count_nonzero(np.isfinite(a)))
        raise ValidationError(
            f"{name} must be finite, found {bad} NaN/Inf cell(s)"
        )
    return a


def check_non_negative_array(name: str, array: "np.ndarray") -> "np.ndarray":
    """Reject negative cells (communication amounts are magnitudes)."""
    a = np.asarray(array, dtype=np.float64)
    if np.any(a < 0):
        raise ValidationError(
            f"{name} must be non-negative, found minimum {a.min()!r}"
        )
    return a


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two (sizes, ways, pages)."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0.0 <= value <= 1.0``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: Number, lo: Number, hi: Number) -> Number:
    """Require ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
