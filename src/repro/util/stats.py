"""Statistics helpers used by the experiment harness.

The paper reports means over 100 runs plus standard deviations (Table V);
``RunningStats`` accumulates those without storing every sample, and the
module-level helpers cover the normalizations used in Figures 6-9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np


class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable for long run ensembles; supports merging partial
    accumulators (used when experiment shards run independently).
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        """Add one sample."""
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Add many samples."""
        for x in xs:
            self.push(x)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (needs n >= 2)."""
        return self._m2 / (self.n - 1) if self.n >= 2 else 0.0

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def relative_std(self) -> float:
        """std / |mean| — the paper's Table V reports this as a percentage."""
        return self.std / abs(self._mean) if self.n >= 2 and self._mean else 0.0

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats(n={self.n}, mean={self.mean:.6g}, std={self.std:.6g})"


def summarize(samples: Sequence[float]) -> RunningStats:
    """Build a :class:`RunningStats` from a sequence."""
    rs = RunningStats()
    rs.extend(samples)
    return rs


def confidence_interval95(samples: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95% CI on the mean of ``samples``."""
    rs = summarize(samples)
    if rs.n < 2:
        return (rs.mean, rs.mean)
    half = 1.96 * rs.std / math.sqrt(rs.n)
    return (rs.mean - half, rs.mean + half)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalized(values: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Normalize a {label: value} mapping to ``values[baseline]``.

    This is the transform behind Figures 6-9 (everything relative to the
    OS scheduler).  A zero baseline normalizes to zero to keep homogeneous
    benchmarks (e.g. EP snoop counts) well defined.
    """
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} not among {sorted(values)}")
    base = values[baseline]
    if base == 0:
        return {k: 0.0 for k in values}
    return {k: v / base for k, v in values.items()}


def percent_change(new: float, old: float) -> float:
    """Signed percent change from ``old`` to ``new`` (negative = reduction)."""
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


@dataclass
class MetricSeries:
    """Named collection of run ensembles, one RunningStats per label."""

    name: str
    stats: Dict[str, RunningStats] = field(default_factory=dict)

    def push(self, label: str, value: float) -> None:
        """Add one sample under ``label``."""
        self.stats.setdefault(label, RunningStats()).push(value)

    def means(self) -> Dict[str, float]:
        """Per-label sample means."""
        return {k: v.mean for k, v in self.stats.items()}

    def relative_stds(self) -> Dict[str, float]:
        """Per-label coefficient of variation (Table V semantics)."""
        return {k: v.relative_std for k, v in self.stats.items()}
