"""Plain-text rendering of the paper's figures.

The paper's communication patterns (Figures 4 & 5) are grayscale
thread-by-thread heatmaps; Figures 6-9 are grouped bar charts.  We render
both as Unicode text so that benchmark harnesses can regenerate them on any
terminal without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

# Darker = more communication, matching the paper's figures.
_SHADES = " .:-=+*#%@"


def shade_char(value: float, vmax: float) -> str:
    """Map ``value`` in [0, vmax] to one of ten density characters."""
    if vmax <= 0 or value <= 0:
        return _SHADES[0]
    frac = min(1.0, float(value) / float(vmax))
    idx = min(len(_SHADES) - 1, int(round(frac * (len(_SHADES) - 1))))
    return _SHADES[idx]


def ascii_heatmap(
    matrix: np.ndarray,
    title: str = "",
    labels: Optional[Sequence[str]] = None,
    normalize: bool = True,
) -> str:
    """Render a square matrix as an ASCII heatmap.

    The diagonal is rendered as ``·`` (self-communication is meaningless in
    the paper's communication matrices).
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    n = m.shape[0]
    if labels is None:
        labels = [str(i) for i in range(n)]
    off = m.copy()
    np.fill_diagonal(off, 0.0)
    vmax = float(off.max()) if normalize else 1.0
    width = max(len(str(lbl)) for lbl in labels)
    lines = []
    if title:
        lines.append(title)
    header = " " * (width + 1) + " ".join(f"{lbl:>1}" for lbl in labels)
    lines.append(header)
    for i in range(n):
        row = []
        for j in range(n):
            if i == j:
                row.append("·")
            else:
                row.append(shade_char(off[i, j], vmax))
        lines.append(f"{labels[i]:>{width}} " + " ".join(row))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Render a horizontal bar chart of {label: value}.

    A vertical tick marks ``reference`` (the OS-normalized 1.0 line of
    Figures 6-9) when it falls inside the plotted range.
    """
    if not values:
        return title
    vmax = max(max(values.values()), reference, 1e-12)
    label_w = max(len(k) for k in values)
    ref_col = int(round(reference / vmax * width))
    lines = [title] if title else []
    for k, v in values.items():
        n = int(round(max(v, 0.0) / vmax * width))
        bar = list("█" * n + " " * (width - n))
        if 0 <= ref_col < width and reference < vmax + 1e-12:
            bar[ref_col] = "│" if bar[ref_col] == " " else bar[ref_col]
        lines.append(f"{k:>{label_w}} |{''.join(bar)}| {v:.3f}")
    return "\n".join(lines)


def format_table(
    rows: Sequence[Sequence[object]],
    header: Optional[Sequence[str]] = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Format rows as an aligned text table (paper-style tables III-V)."""
    def fmt(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    str_rows = [[fmt(c) for c in row] for row in rows]
    all_rows = ([list(map(str, header))] if header else []) + str_rows
    if not all_rows:
        return ""
    ncols = max(len(r) for r in all_rows)
    widths = [0] * ncols
    for r in all_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    lines = []
    if header:
        lines.append("  ".join(f"{c:<{widths[i]}}" for i, c in enumerate(all_rows[0])))
        lines.append("  ".join("-" * w for w in widths))
        body = all_rows[1:]
    else:
        body = all_rows
    for r in body:
        lines.append("  ".join(f"{c:<{widths[i]}}" for i, c in enumerate(r)))
    return "\n".join(lines)
