"""Dependency-free SVG rendering of the paper's figure types.

The text renderers in :mod:`repro.util.render` serve terminals; these
produce standalone ``.svg`` files for papers/READMEs — communication
heatmaps (Figures 4/5) and grouped bar charts (Figures 6-9).  Plain
string assembly, no plotting stack.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Union
from xml.sax.saxutils import escape

import numpy as np

#: Bar fill colours per policy, matching the paper's OS/SM/HM grouping.
SERIES_COLORS = ("#9aa0a6", "#1a73e8", "#ea8600", "#188038", "#d93025")

_FONT = 'font-family="Helvetica, Arial, sans-serif"'


def _svg_document(width: int, height: int, body: List[str]) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    return "\n".join([head, *body, "</svg>"])


def _gray(value: float, vmax: float) -> str:
    """Paper-style grayscale: darker = more communication."""
    if vmax <= 0:
        frac = 0.0
    else:
        frac = min(1.0, max(0.0, float(value) / float(vmax)))
    level = int(round(255 * (1.0 - frac)))
    return f"rgb({level},{level},{level})"


def heatmap_svg(
    matrix: np.ndarray,
    title: str = "",
    cell: int = 28,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a communication matrix as an SVG heatmap (Figures 4/5 style)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    n = m.shape[0]
    labels = [str(x) for x in (labels or range(n))]
    off = m.copy()
    np.fill_diagonal(off, 0.0)
    vmax = float(off.max())
    margin = 34
    top = 30 if title else 10
    width = margin + n * cell + 10
    height = top + n * cell + margin
    body: List[str] = []
    if title:
        body.append(
            f'<text x="{margin}" y="18" {_FONT} font-size="13">'
            f"{escape(title)}</text>"
        )
    for i in range(n):
        for j in range(n):
            x = margin + j * cell
            y = top + i * cell
            fill = "#ffffff" if i == j else _gray(off[i, j], vmax)
            body.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{fill}" stroke="#cccccc" stroke-width="0.5"/>'
            )
            if i == j:
                cx = x + cell / 2
                cy = y + cell / 2 + 1
                body.append(
                    f'<circle cx="{cx}" cy="{cy}" r="1.5" fill="#999999"/>'
                )
    for k, lbl in enumerate(labels):
        body.append(
            f'<text x="{margin + k * cell + cell / 2}" '
            f'y="{top + n * cell + 14}" {_FONT} font-size="10" '
            f'text-anchor="middle">{escape(lbl)}</text>'
        )
        body.append(
            f'<text x="{margin - 6}" y="{top + k * cell + cell / 2 + 3}" '
            f'{_FONT} font-size="10" text-anchor="end">{escape(lbl)}</text>'
        )
    return _svg_document(width, height, body)


def grouped_bars_svg(
    data: Mapping[str, Mapping[str, float]],
    title: str = "",
    series_order: Optional[Sequence[str]] = None,
    bar_width: int = 14,
    plot_height: int = 160,
    reference: float = 1.0,
) -> str:
    """Render {group: {series: value}} as grouped bars (Figures 6-9 style).

    A dashed line marks ``reference`` (the OS-normalized 1.0).
    """
    if not data:
        raise ValueError("no data to plot")
    groups = list(data)
    series = list(series_order or next(iter(data.values())))
    vmax = max(
        max((row.get(s, 0.0) for s in series), default=0.0)
        for row in data.values()
    )
    vmax = max(vmax, reference) * 1.1 or 1.0
    gap = 18
    group_w = len(series) * bar_width + gap
    margin_l, margin_b, top = 40, 36, 30 if title else 12
    width = margin_l + len(groups) * group_w + 20
    height = top + plot_height + margin_b
    body: List[str] = []
    if title:
        body.append(
            f'<text x="{margin_l}" y="18" {_FONT} font-size="13">'
            f"{escape(title)}</text>"
        )

    def y_of(v: float) -> float:
        return top + plot_height * (1.0 - v / vmax)

    # Reference line.
    if 0 < reference <= vmax:
        body.append(
            f'<line x1="{margin_l}" y1="{y_of(reference):.1f}" '
            f'x2="{width - 10}" y2="{y_of(reference):.1f}" '
            f'stroke="#888888" stroke-dasharray="4,3" stroke-width="1"/>'
        )
    # Bars.
    for gi, group in enumerate(groups):
        for si, s in enumerate(series):
            v = float(data[group].get(s, 0.0))
            x = margin_l + gi * group_w + si * bar_width
            y = y_of(max(v, 0.0))
            h = top + plot_height - y
            color = SERIES_COLORS[si % len(SERIES_COLORS)]
            body.append(
                f'<rect x="{x}" y="{y:.1f}" width="{bar_width - 2}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
        body.append(
            f'<text x="{margin_l + gi * group_w + (group_w - gap) / 2}" '
            f'y="{top + plot_height + 14}" {_FONT} font-size="10" '
            f'text-anchor="middle">{escape(str(group))}</text>'
        )
    # Baseline + legend.
    body.append(
        f'<line x1="{margin_l}" y1="{top + plot_height}" '
        f'x2="{width - 10}" y2="{top + plot_height}" '
        f'stroke="#333333" stroke-width="1"/>'
    )
    for si, s in enumerate(series):
        x = margin_l + si * 70
        y = top + plot_height + 28
        color = SERIES_COLORS[si % len(SERIES_COLORS)]
        body.append(f'<rect x="{x}" y="{y - 9}" width="10" height="10" fill="{color}"/>')
        body.append(
            f'<text x="{x + 14}" y="{y}" {_FONT} font-size="10">'
            f"{escape(str(s))}</text>"
        )
    return _svg_document(width, height, body)


def save_svg(svg: str, path: Union[str, Path]) -> None:
    """Write an SVG string to ``path``."""
    with open(path, "w") as fh:
        fh.write(svg + "\n")
