"""Machine model: topology, assembled system, trace-driven simulator.

``Topology`` describes who shares what (cores → L2s → chips) and yields the
distance matrix the mapping-quality objective uses; ``System`` assembles
page table, per-core MMUs and the cache hierarchy for a topology; the
``Simulator`` drives a workload's access streams through a system under a
given thread→core mapping and produces the paper's measured quantities.
"""

from repro.machine.topology import Topology, harpertown, multi_level, nehalem
from repro.machine.system import System, SystemConfig, nehalem_config, numa_variant
from repro.machine.simulator import NoiseConfig, PhaseStats, SimConfig, SimResult, Simulator

__all__ = [
    "Topology",
    "harpertown",
    "multi_level",
    "nehalem",
    "nehalem_config",
    "System",
    "SystemConfig",
    "numa_variant",
    "NoiseConfig",
    "PhaseStats",
    "SimConfig",
    "SimResult",
    "Simulator",
]
