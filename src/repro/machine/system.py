"""Assembled machine: page table + per-core MMUs + cache hierarchy.

``System`` is the paper's simulated machine (Section V-B): it owns one
shared page table, one MMU (with TLB) per core, and the two-level MESI
hierarchy, wired according to a :class:`~repro.machine.topology.Topology`.
Detection mechanisms attach to it — the SM detector registers TLB-miss
hooks on every MMU; the HM detector gets the TLB list for periodic scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.machine.topology import Topology, harpertown
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.interconnect import Interconnect, InterconnectConfig
from repro.mem.numa import AutoNUMA, FirstTouchNUMA, NUMAConfig
from repro.tlb.mmu import MMU, TLBManagement
from repro.tlb.pagetable import PageTable, PageTableConfig
from repro.tlb.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class SystemConfig:
    """Non-topology machine parameters.

    Attributes:
        tlb: TLB geometry (paper: 64 entries, 4-way).
        tlb_management: software- or hardware-managed refill.
        page_table: page-table geometry/walk cost.
        memory_latency: DRAM fill cycles (UMA; ignored when ``numa`` set).
        frequency_ghz: clock used to convert cycles to seconds.
        interconnect: link latencies.
        numa: optional NUMA parameters; when set, each page is homed on
            the chip that first touches it and remote fills pay the
            penalty (see :mod:`repro.mem.numa`).
    """

    tlb: TLBConfig = field(default_factory=TLBConfig)
    #: Optional second-level TLB (e.g. Nehalem: 512-entry 4-way); L1-TLB
    #: misses that hit here skip the walk and the SM trap entirely.
    l2_tlb: "TLBConfig | None" = None
    tlb_management: TLBManagement = TLBManagement.HARDWARE
    page_table: PageTableConfig = field(default_factory=PageTableConfig)
    memory_latency: int = 200
    frequency_ghz: float = 2.0
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    numa: "NUMAConfig | None" = None


def nehalem_config() -> SystemConfig:
    """System parameters matching :func:`~repro.machine.topology.nehalem`.

    Two-level TLB (64-entry 4-way L1 D-TLB backed by a 512-entry 4-way
    unified L2 TLB) and NUMA memory (integrated controllers + QPI).
    """
    return SystemConfig(
        tlb=TLBConfig(entries=64, ways=4),
        l2_tlb=TLBConfig(entries=512, ways=4),
        tlb_management=TLBManagement.HARDWARE,
        memory_latency=180,
        interconnect=InterconnectConfig(
            intra_chip_latency=30,
            inter_chip_latency=110,
            intra_chip_invalidate_latency=10,
            inter_chip_invalidate_latency=35,
        ),
        numa=NUMAConfig(local_latency=180, remote_penalty=120),
    )


def numa_variant(
    config: Optional[SystemConfig] = None,
    remote_memory_penalty: int = 160,
    interchip_factor: float = 2.5,
) -> SystemConfig:
    """NUMA version of a system configuration.

    Two changes, per the paper's conclusion that NUMA widens the latency
    gap thread mapping exploits: chip-crossing transfers get
    ``interchip_factor`` more expensive (socket interconnect instead of a
    shared bus), and DRAM fills from a page homed on another chip pay
    ``remote_memory_penalty`` extra cycles (first-touch homing).
    """
    base = config or SystemConfig()
    ic = base.interconnect
    return SystemConfig(
        tlb=base.tlb,
        tlb_management=base.tlb_management,
        page_table=base.page_table,
        memory_latency=base.memory_latency,
        frequency_ghz=base.frequency_ghz,
        interconnect=InterconnectConfig(
            intra_chip_latency=ic.intra_chip_latency,
            inter_chip_latency=int(ic.inter_chip_latency * interchip_factor),
            intra_chip_invalidate_latency=ic.intra_chip_invalidate_latency,
            inter_chip_invalidate_latency=int(
                ic.inter_chip_invalidate_latency * interchip_factor
            ),
        ),
        numa=NUMAConfig(
            local_latency=base.memory_latency,
            remote_penalty=remote_memory_penalty,
            page_size=base.page_table.page_size,
        ),
    )


class System:
    """One simulated multicore machine."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        config: Optional[SystemConfig] = None,
    ):
        self.topology = topology or harpertown()
        self.config = config or SystemConfig()
        if self.config.tlb.page_size != self.config.page_table.page_size:
            raise ValueError("TLB and page table disagree on page size")
        if (self.config.l2_tlb is not None
                and self.config.l2_tlb.page_size != self.config.tlb.page_size):
            raise ValueError("L1 and L2 TLBs disagree on page size")
        self.page_table = PageTable(self.config.page_table)
        self.mmus: List[MMU] = [
            MMU(
                core_id=c,
                page_table=self.page_table,
                tlb_config=self.config.tlb,
                management=self.config.tlb_management,
                l2_tlb_config=self.config.l2_tlb,
            )
            for c in range(self.topology.num_cores)
        ]
        if self.config.numa is None:
            self.numa_model = None
        elif self.config.numa.auto_migrate:
            self.numa_model = AutoNUMA(
                self.config.numa, line_size=self.topology.l1_config.line_size
            )
        else:
            self.numa_model = FirstTouchNUMA(
                self.config.numa, line_size=self.topology.l1_config.line_size
            )
        self.hierarchy = MemoryHierarchy(
            num_cores=self.topology.num_cores,
            core_to_l2=self.topology.core_to_l2(),
            chip_of_l2=self.topology.chip_of_l2(),
            l1_config=self.topology.l1_config,
            l2_config=self.topology.l2_config,
            interconnect=Interconnect(self.config.interconnect),
            memory_latency=self.config.memory_latency,
            memory_model=self.numa_model,
        )

    @property
    def num_cores(self) -> int:
        return self.topology.num_cores

    @property
    def tlbs(self) -> List[TLB]:
        """All per-core L1 TLBs (what the HM mechanism scans)."""
        return [mmu.tlb for mmu in self.mmus]

    @property
    def l2_tlbs(self) -> "List[TLB] | None":
        """Per-core second-level TLBs, or None when not configured."""
        if self.config.l2_tlb is None:
            return None
        return [mmu.l2_tlb for mmu in self.mmus]

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall time at the configured clock."""
        return cycles / (self.config.frequency_ghz * 1e9)

    def reset(self) -> None:
        """Fresh caches/TLBs/counters; the page table survives (same process)."""
        for mmu in self.mmus:
            mmu.tlb.flush()
            mmu.tlb.stats.__init__()
            if mmu.l2_tlb is not None:
                mmu.l2_tlb.flush()
                mmu.l2_tlb.stats.__init__()
        self.hierarchy.flush_all()
        self.hierarchy.reset_stats()
        if self.numa_model is not None:
            self.numa_model.reset_stats()

    def tlb_miss_rate(self) -> float:
        """Aggregate TLB miss rate over all cores (Table III column 1)."""
        hits = sum(t.stats.hits for t in self.tlbs)
        misses = sum(t.stats.misses for t in self.tlbs)
        total = hits + misses
        return misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System({self.topology.num_cores} cores, "
            f"{self.config.tlb_management.value}-managed TLB)"
        )
