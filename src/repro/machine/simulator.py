"""Trace-driven multicore simulator.

Drives a workload's per-thread access streams through a :class:`System`
under a thread→core mapping, interleaving threads round-robin in quanta of
``quantum`` accesses so that concurrent sharing, MESI ping-pong and the
HM mechanism's temporal sampling are all meaningful.  Phase boundaries are
barriers: every core's clock is advanced to the slowest core's.

Per access, a core is charged: a base op cost, the translation cost (zero
on a TLB hit; walk + trap + detection-hook cycles on a miss) and the cache
access latency.  The execution time of the run is the maximum core clock —
the paper's measured quantity in Figure 6.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.machine.system import System
from repro.obs.metrics import global_registry
from repro.obs.trace import Span, get_tracer
from repro.util.rng import as_rng, derive_seed
from repro.workloads.base import Phase, Workload

#: Valid values of :attr:`SimConfig.engine`.
ENGINES = ("auto", "scalar", "batched")


def resolve_engine(engine: str) -> str:
    """Resolve an engine selector to a concrete engine name.

    ``"auto"`` picks the batched fast path unless the ``REPRO_SIM_ENGINE``
    environment variable forces one (the CI hook for running the same
    suite under both engines without touching configs).
    """
    if engine == "auto":
        forced = os.environ.get("REPRO_SIM_ENGINE", "").strip().lower()
        if not forced:
            return "batched"
        if forced not in ("scalar", "batched"):
            raise ValueError(
                f"REPRO_SIM_ENGINE must be 'scalar' or 'batched', "
                f"got {forced!r}"
            )
        return forced
    return engine


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs.

    Attributes:
        quantum: accesses per thread per scheduling round.  Small enough
            that threads genuinely overlap, large enough to amortize loop
            overhead.
        base_op_cycles: compute cycles charged per access (models the
            arithmetic between memory operations).
        charge_detection: whether detection-mechanism routine cycles perturb
            core clocks (True reproduces the paper's overhead measurements;
            False gives an idealized mechanism).
        collect_phase_stats: record a per-phase counter breakdown in
            ``SimResult.phases`` (time-resolved analysis, e.g. watching
            invalidations collapse after a dynamic remap).
        noise: optional OS-noise model (random preemptions + TLB flushes).
        engine: ``"scalar"`` (per-access reference loop), ``"batched"``
            (vectorized-precompute fast path; bit-identical counters), or
            ``"auto"`` (batched, overridable via ``REPRO_SIM_ENGINE``).
    """

    quantum: int = 256
    base_op_cycles: int = 1
    charge_detection: bool = True
    collect_phase_stats: bool = False
    noise: Optional[NoiseConfig] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )


@dataclass(frozen=True)
class NoiseConfig:
    """OS-noise model: random preemptions hitting the application cores.

    Real machines run daemons, interrupts and kernel threads; each
    preemption steals cycles and (on return) leaves the TLB partly or
    fully cold.  This is the physical source of the run-to-run variance
    the paper's Table V reports — and a robustness test for the detection
    mechanisms, whose TLB contents get clobbered underneath them.

    Attributes:
        preemption_rate: probability that a thread's scheduling quantum is
            interrupted by a preemption.
        preemption_cost: cycles stolen per preemption.
        flush_tlb: whether the preempting work evicts the TLB (it ran its
            own address space).
        seed: noise stream seed — vary per run for ensemble variance.
    """

    preemption_rate: float = 0.01
    preemption_cost: int = 30_000
    flush_tlb: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.preemption_rate <= 1.0:
            raise ValueError("preemption_rate must be in [0, 1]")
        if self.preemption_cost < 0:
            raise ValueError("preemption_cost must be non-negative")


@dataclass(frozen=True)
class PhaseStats:
    """Counter deltas for one barrier-delimited phase."""

    name: str
    accesses: int
    cycles: int                 # growth of the max core clock
    invalidations: int
    snoop_transactions: int
    l2_misses: int
    tlb_misses: int


@dataclass
class SimResult:
    """Everything the paper measures for one run."""

    execution_cycles: int
    execution_seconds: float
    core_cycles: List[int]
    accesses: int
    invalidations: int
    snoop_transactions: int
    l2_misses: int
    memory_fetches: int
    l1_sibling_invalidations: int
    tlb_accesses: int
    tlb_misses: int
    inter_chip_transactions: int
    intra_chip_transactions: int
    detection: Dict[str, dict] = field(default_factory=dict)
    migrations: int = 0
    threads_migrated: int = 0
    #: OS-noise preemptions injected (when :attr:`SimConfig.noise` is set).
    preemptions: int = 0
    #: Per-phase counter deltas (populated when
    #: :attr:`SimConfig.collect_phase_stats` is set).
    phases: List["PhaseStats"] = field(default_factory=list)

    @property
    def tlb_miss_rate(self) -> float:
        """Fraction of accesses missing the TLB (Table III column 1)."""
        return self.tlb_misses / self.tlb_accesses if self.tlb_accesses else 0.0

    def per_second(self, value: float) -> float:
        """Convert an event count to events/second (Table IV rows)."""
        return value / self.execution_seconds if self.execution_seconds else 0.0

    @property
    def invalidations_per_second(self) -> float:
        return self.per_second(self.invalidations)

    @property
    def snoops_per_second(self) -> float:
        return self.per_second(self.snoop_transactions)

    @property
    def l2_misses_per_second(self) -> float:
        return self.per_second(self.l2_misses)


PhaseSource = Union[Workload, Iterable[Phase]]


class Simulator:
    """Runs workloads on a :class:`System`."""

    def __init__(self, system: Optional[System] = None, config: Optional[SimConfig] = None):
        self.system = system or System()
        self.config = config or SimConfig()

    def run(
        self,
        workload: PhaseSource,
        mapping: Optional[Sequence[int]] = None,
        detectors: Sequence[object] = (),
        reset: bool = True,
        migration_controller: Optional[object] = None,
    ) -> SimResult:
        """Simulate one full execution.

        Args:
            workload: a :class:`Workload` or an iterable of phases.
            mapping: ``mapping[t]`` = core running thread ``t``.  Must be a
                permutation prefix of the core set (the paper pins one
                thread per core).  Defaults to the identity.
            detectors: detection mechanisms implementing the
                :class:`~repro.core.detection.Detector` protocol; they are
                attached for the duration of the run.
            reset: start from cold caches/TLBs and zeroed counters.
            migration_controller: optional dynamic-mapping policy (e.g.
                :class:`~repro.core.dynamic.MigrationController`).  Its
                ``on_phase_end(phase_index, now_cycles)`` hook is called at
                every barrier; a returned mapping is applied before the
                next phase, each moved thread paying the controller's
                ``migration_cost_cycles`` on its new core, and attached
                detectors are rebound to the new placement.  Controllers
                that also expose ``on_tick(now_cycles)`` and a positive
                ``tick_interval_cycles`` are additionally consulted
                mid-phase, between scheduling rounds, at that cadence —
                live remapping rather than barrier-granularity.
        """
        system = self.system
        phases = workload.phases() if isinstance(workload, Workload) else iter(workload)
        if reset:
            system.reset()

        first = next(phases, None)
        if first is None:
            raise ValueError("workload produced no phases")
        num_threads = first.num_threads
        if mapping is None:
            mapping = list(range(num_threads))
        else:
            mapping = list(mapping)
        if len(mapping) != num_threads:
            raise ValueError(
                f"mapping has {len(mapping)} entries for {num_threads} threads"
            )
        if len(set(mapping)) != num_threads:
            raise ValueError("mapping must place each thread on a distinct core")
        if max(mapping) >= system.num_cores or min(mapping) < 0:
            raise ValueError(
                f"mapping uses cores outside 0..{system.num_cores - 1}"
            )

        core_to_thread = {core: t for t, core in enumerate(mapping)}
        for det in detectors:
            det.attach(system, core_to_thread)
        tracer = get_tracer()
        engine = resolve_engine(self.config.engine)
        root = (
            tracer.begin(
                "simulate",
                cat="sim",
                args={"threads": num_threads, "engine": engine},
            )
            if tracer.enabled
            else None
        )
        try:
            result = self._run_phases(
                first, phases, mapping, detectors, migration_controller
            )
        except BaseException:
            if root is not None:
                tracer.end(root, args={"error": True})
            raise
        finally:
            for det in detectors:
                det.detach()
        if root is not None:
            tracer.end(
                root,
                cycles=result.execution_cycles,
                args={
                    "accesses": result.accesses,
                    "tlb_misses": result.tlb_misses,
                    "invalidations": result.invalidations,
                },
            )
        self._publish_run_metrics(engine, result)
        for det in detectors:
            result.detection[getattr(det, "name", type(det).__name__)] = det.summary()
        return result

    @staticmethod
    def _publish_run_metrics(engine: str, result: "SimResult") -> None:
        """Fold one run's aggregates into the process-wide registry."""
        reg = global_registry()
        labels = {"engine": engine}
        reg.counter("sim_runs_total", labels).inc()
        reg.counter("sim_accesses_total", labels).inc(result.accesses)
        reg.counter("sim_cycles_total", labels).inc(result.execution_cycles)
        reg.counter("sim_tlb_misses_total", labels).inc(result.tlb_misses)
        reg.counter("sim_preemptions_total", labels).inc(result.preemptions)

    # -- core loop -------------------------------------------------------------

    def _run_phases(
        self,
        first: Phase,
        rest: Iterable[Phase],
        mapping: List[int],
        detectors: Sequence[object],
        migration_controller: Optional[object] = None,
    ) -> SimResult:
        system = self.system
        cfg = self.config
        num_cores = system.num_cores
        core_cycles = [0] * num_cores
        total_accesses = 0
        quantum = cfg.quantum
        base = cfg.base_op_cycles
        charge = cfg.charge_detection
        translate = [mmu.translate for mmu in system.mmus]
        access = system.hierarchy.access
        access_batch = system.hierarchy.access_batch
        batched = resolve_engine(cfg.engine) == "batched"
        page_shift = system.mmus[0].page_shift
        line_shift = system.hierarchy.line_shift
        noise = cfg.noise
        noise_on = noise is not None and noise.preemption_rate > 0
        # One independent stream per thread, one draw per own quantum:
        # draws depend only on (thread, quantum index), never on mapping
        # or completion order, so identical seeds stay identical under
        # remapping (the reproducibility Table V's variance study needs).
        # Streams derive through util/rng's stable hash (RPL001): the
        # seed derivation is shared with every other stochastic
        # component instead of an ad-hoc tuple-seeded generator.
        noise_rngs = (
            [
                as_rng(derive_seed(noise.seed, "noise", t))
                for t in range(len(mapping))
            ]
            if noise_on
            else None
        )
        preemptions = 0

        def maybe_preempt(thread: int, core: int) -> None:
            nonlocal preemptions
            if noise_rngs[thread].random() >= noise.preemption_rate:
                return
            preemptions += 1
            core_cycles[core] += noise.preemption_cost
            if noise.flush_tlb:
                mmu = system.mmus[core]
                mmu.tlb.flush()
                if mmu.l2_tlb is not None:
                    mmu.l2_tlb.flush()

        # Mid-phase remapping: a controller exposing ``on_tick`` with a
        # positive ``tick_interval_cycles`` is consulted *inside* phases,
        # not just at barriers.  Measurement motivates this: by the first
        # barrier after a pattern shift the new working set is warm, and
        # a migration's physical refetch storm exceeds any remaining
        # placement benefit — only a remap during the first phase of the
        # new pattern, while caches are still cold, can win.
        tick_interval = int(
            getattr(migration_controller, "tick_interval_cycles", 0) or 0
        )
        on_tick = (
            migration_controller.on_tick
            if tick_interval > 0 and hasattr(migration_controller, "on_tick")
            else None
        )
        next_tick = tick_interval

        def run_phase(phase: Phase) -> int:
            nonlocal next_tick
            done = 0
            streams = phase.streams
            if batched:
                seqs = [s.sequences(page_shift, line_shift) for s in streams]
                lengths = [sq.length for sq in seqs]
            else:
                addrs = [s.addrs.tolist() for s in streams]
                writes = [s.writes.tolist() for s in streams]
                lengths = [len(a) for a in addrs]
            pos = [0] * len(streams)
            active = [t for t in range(len(streams)) if lengths[t]]
            while active:
                for t in active[:]:
                    core = mapping[t]
                    i = pos[t]
                    n = lengths[t]
                    end = min(i + quantum, n)
                    # Quantum-start clock refresh: miss hooks (SM detection)
                    # receive this as the access timestamp, so trace events
                    # and streaming sinks are stamped with simulated time at
                    # quantum resolution.
                    system.mmus[core].now_cycles = core_cycles[core]
                    if batched:
                        # Guaranteed-hit contract: quantum boundaries can
                        # flush/evict TLB entries (noise, migrations), so
                        # every quantum opens with a scalar translation and
                        # batches only the same-page run tails inside it.
                        sq = seqs[t]
                        vpns = sq.vpns
                        run_starts = sq.run_starts
                        mmu = system.mmus[core]
                        tr_vpn = mmu.translate_vpn
                        tr_batch = mmu.translate_batch
                        cyc = (end - i) * base
                        j = i
                        k = bisect_right(run_starts, j)
                        while j < end:
                            nxt = run_starts[k] if k < len(run_starts) else n
                            run_end = nxt if nxt < end else end
                            vpn = vpns[j]
                            cyc += tr_vpn(vpn)
                            if run_end - j > 1:
                                cyc += tr_batch(vpn, run_end - j - 1)
                            j = run_end
                            k += 1
                        cyc += access_batch(core, sq.lines, sq.writes, i, end)
                    else:
                        a = addrs[t]
                        w = writes[t]
                        tr = translate[core]
                        cyc = 0
                        while i < end:
                            addr = a[i]
                            cyc += base + tr(addr) + access(core, addr, w[i])
                            i += 1
                    core_cycles[core] += cyc
                    done += end - pos[t]
                    pos[t] = end
                    if noise_rngs is not None:
                        maybe_preempt(t, core)
                    if end == n:
                        active.remove(t)
                if detectors:
                    now = max(core_cycles)
                    for det in detectors:
                        polled = det.poll(now)
                        if polled is not None and charge:
                            # One (core, cost) charge per routine the
                            # detector ran this poll — catch-up bursts
                            # spread over distinct cores.
                            for core_id, cost in polled:
                                core_cycles[core_id] += cost
                if on_tick is not None:
                    now = max(core_cycles)
                    if now >= next_tick:
                        next_tick = now + tick_interval
                        proposed = on_tick(now)
                        if proposed is not None:
                            apply_mapping(list(proposed))
            return done

        migrations = 0
        threads_migrated = 0
        phase_stats: List[PhaseStats] = []
        collect_phases = cfg.collect_phase_stats
        tracer = get_tracer()
        traced = tracer.enabled
        # Tracing needs the same before/after counter snapshots the
        # phase-stats path takes; enable them for either consumer.
        want_snapshots = collect_phases or traced

        def counters_snapshot() -> Tuple[int, int, int, int, int]:
            h = system.hierarchy
            return (
                max(core_cycles),
                h.stats.invalidations,
                h.stats.snoop_transactions,
                h.stats.l2_misses,
                sum(t.stats.misses for t in system.tlbs),
            )

        def record_phase(
            phase: Phase,
            before: Tuple[int, int, int, int, int],
            accesses: int,
        ) -> None:
            after = counters_snapshot()
            phase_stats.append(PhaseStats(
                name=phase.name,
                accesses=accesses,
                cycles=after[0] - before[0],
                invalidations=after[1] - before[1],
                snoop_transactions=after[2] - before[2],
                l2_misses=after[3] - before[3],
                tlb_misses=after[4] - before[4],
            ))

        def apply_mapping(new_mapping: List[int], phase_index: int = -1) -> None:
            """Validate and apply a controller-requested remap.

            Shared by the barrier hook and the mid-phase tick path
            (``phase_index`` is -1 for ticks — the remap lands between
            scheduling rounds, not at a barrier).
            """
            nonlocal migrations, threads_migrated
            if sorted(set(new_mapping)) != sorted(new_mapping) or len(
                new_mapping
            ) != len(mapping):
                raise ValueError("migration controller returned an invalid mapping")
            if max(new_mapping) >= num_cores or min(new_mapping) < 0:
                raise ValueError("migration controller mapped outside the core set")
            moved = [t for t in range(len(mapping)) if mapping[t] != new_mapping[t]]
            if not moved:
                return
            cost = int(getattr(migration_controller, "migration_cost_cycles", 0))
            for t in moved:
                core_cycles[new_mapping[t]] += cost
            if getattr(migration_controller, "warmup_flush", False):
                # Charge the warm-up penalty *physically*, not just as a
                # lump of cycles: a migrated thread arrives at a core whose
                # TLBs hold the previous tenant's translations.  Flushing
                # the destination's TLB levels forces the re-walk storm the
                # cost model prices, so mispriced models show up as cycle
                # discrepancies in the adaptive-vs-static study.
                for t in moved:
                    mmu = system.mmus[new_mapping[t]]
                    mmu.tlb.flush()
                    if mmu.l2_tlb is not None:
                        mmu.l2_tlb.flush()
            mapping[:] = new_mapping
            migrations += 1
            threads_migrated += len(moved)
            if traced:
                tracer.event(
                    "migration",
                    cat="sim.migration",
                    cycles=max(core_cycles),
                    args={"phase": phase_index, "moved": len(moved)},
                )
            core_to_thread = {core: t for t, core in enumerate(mapping)}
            for det in detectors:
                det.rebind(core_to_thread)

        def handle_migration(phase_index: int) -> None:
            if migration_controller is None:
                return
            new_mapping = migration_controller.on_phase_end(
                phase_index, max(core_cycles)
            )
            if new_mapping is None:
                return
            apply_mapping(list(new_mapping), phase_index)

        def trace_phase(
            before: Tuple[int, int, int, int, int], span: Span, done: int
        ) -> None:
            after = counters_snapshot()
            tracer.end(
                span,
                cycles=after[0],
                args={
                    "accesses": done,
                    "invalidations": after[1] - before[1],
                    "snoops": after[2] - before[2],
                    "l2_misses": after[3] - before[3],
                    "tlb_misses": after[4] - before[4],
                },
            )

        phase_index = 0
        before = counters_snapshot() if want_snapshots else None
        pspan = (
            tracer.begin(f"phase:{first.name}", cat="sim.phase", cycles=before[0])
            if traced
            else None
        )
        done = run_phase(first)
        total_accesses += done
        if pspan is not None:
            trace_phase(before, pspan, done)
        if collect_phases:
            record_phase(first, before, done)
        handle_migration(phase_index)
        for phase in rest:
            phase_index += 1
            # Barrier: everyone waits for the slowest core.
            sync = max(core_cycles)
            for c in range(num_cores):
                core_cycles[c] = sync
            before = counters_snapshot() if want_snapshots else None
            pspan = (
                tracer.begin(f"phase:{phase.name}", cat="sim.phase", cycles=before[0])
                if traced
                else None
            )
            done = run_phase(phase)
            total_accesses += done
            if pspan is not None:
                trace_phase(before, pspan, done)
            if collect_phases:
                record_phase(phase, before, done)
            handle_migration(phase_index)

        execution_cycles = max(core_cycles)
        h = system.hierarchy
        ic = h.interconnect.stats
        tlb_acc = sum(t.stats.accesses for t in system.tlbs)
        tlb_miss = sum(t.stats.misses for t in system.tlbs)
        return SimResult(
            execution_cycles=execution_cycles,
            execution_seconds=system.cycles_to_seconds(execution_cycles),
            core_cycles=list(core_cycles),
            accesses=total_accesses,
            invalidations=h.stats.invalidations,
            snoop_transactions=h.stats.snoop_transactions,
            l2_misses=h.stats.l2_misses,
            memory_fetches=h.stats.memory_fetches,
            l1_sibling_invalidations=h.l1_sibling_invalidations,
            tlb_accesses=tlb_acc,
            tlb_misses=tlb_miss,
            inter_chip_transactions=ic.inter_transactions,
            intra_chip_transactions=ic.intra_transactions,
            migrations=migrations,
            threads_migrated=threads_migrated,
            preemptions=preemptions,
            phases=phase_stats,
        )
