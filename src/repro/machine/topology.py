"""Machine topology: which cores share which caches and chips.

The paper's machine (Figure 3) is two Intel Harpertown-style packages, four
cores each, with every L2 shared by a core pair — so the memory hierarchy
defines three distance classes between cores: same L2, same chip, and
cross-chip.  ``Topology`` generalizes this to any cores-per-L2 /
L2s-per-chip / chips arrangement and derives:

* the wiring tables the :class:`~repro.mem.hierarchy.MemoryHierarchy` needs,
* the core-distance matrix used by the mapping-quality objective,
* the group sizes per shared level that drive the hierarchical mapper
  (pairs for a shared L2, fours for a chip, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.mem.cache import CacheConfig
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Topology:
    """A symmetric cores/L2s/chips tree.

    Attributes:
        cores_per_l2: cores sharing each L2 cache.
        l2_per_chip: L2 caches per chip (socket).
        chips: number of chips.
        distance_weights: (same_l2, same_chip, cross_chip) hop costs used in
            the mapping objective; the defaults follow the relative latency
            of L2 sharing vs. intra-chip vs. front-side-bus transfers.
        l1_config / l2_config: cache geometries for systems built on this
            topology (paper Table II defaults).
    """

    cores_per_l2: int = 2
    l2_per_chip: int = 2
    chips: int = 2
    distance_weights: Tuple[float, float, float] = (1.0, 2.0, 4.0)
    l1_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=32 * 1024, ways=4, line_size=64, latency=2,
            write_back=False, name="L1",
        )
    )
    l2_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=6 * 1024 * 1024, ways=8, line_size=64, latency=8,
            write_back=True, name="L2",
        )
    )

    def __post_init__(self) -> None:
        check_positive("cores_per_l2", self.cores_per_l2)
        check_positive("l2_per_chip", self.l2_per_chip)
        check_positive("chips", self.chips)
        w = self.distance_weights
        if not (0 < w[0] <= w[1] <= w[2]):
            raise ValueError(
                f"distance_weights must be increasing positives, got {w}"
            )

    # -- derived sizes -----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return self.cores_per_l2 * self.l2_per_chip * self.chips

    @property
    def num_l2(self) -> int:
        return self.l2_per_chip * self.chips

    @property
    def cores_per_chip(self) -> int:
        return self.cores_per_l2 * self.l2_per_chip

    # -- wiring tables ------------------------------------------------------------

    def core_to_l2(self) -> List[int]:
        """L2 id for each core (cores numbered L2-major, as in Figure 3)."""
        return [c // self.cores_per_l2 for c in range(self.num_cores)]

    def chip_of_l2(self) -> List[int]:
        """Chip id for each L2."""
        return [l2 // self.l2_per_chip for l2 in range(self.num_l2)]

    def chip_of_core(self, core: int) -> int:
        """Chip id of a core."""
        return core // self.cores_per_chip

    def l2_of_core(self, core: int) -> int:
        """L2 id of a core."""
        return core // self.cores_per_l2

    def cores_of_l2(self, l2: int) -> List[int]:
        """Cores attached to L2 ``l2``."""
        base = l2 * self.cores_per_l2
        return list(range(base, base + self.cores_per_l2))

    # -- distances ---------------------------------------------------------------

    def distance(self, a: int, b: int) -> float:
        """Communication distance between two cores (0 for a == b)."""
        if a == b:
            return 0.0
        same_l2, same_chip, cross = self.distance_weights
        if self.l2_of_core(a) == self.l2_of_core(b):
            return same_l2
        if self.chip_of_core(a) == self.chip_of_core(b):
            return same_chip
        return cross

    def distance_matrix(self) -> np.ndarray:
        """Full core×core distance matrix (vectorized construction)."""
        n = self.num_cores
        cores = np.arange(n)
        l2 = cores // self.cores_per_l2
        chip = cores // self.cores_per_chip
        same_l2 = l2[:, None] == l2[None, :]
        same_chip = chip[:, None] == chip[None, :]
        w_l2, w_chip, w_cross = self.distance_weights
        d = np.full((n, n), w_cross, dtype=float)
        d[same_chip] = w_chip
        d[same_l2] = w_l2
        np.fill_diagonal(d, 0.0)
        return d

    # -- hierarchy levels for the mapper ---------------------------------------------

    def group_sizes(self) -> List[int]:
        """Group size at each shared level, innermost first.

        Harpertown: ``[2, 4]`` — pairs share an L2, fours share a chip.  The
        machine level (all cores) is omitted; grouping beyond a chip buys
        nothing.
        """
        sizes = []
        if self.cores_per_l2 > 1:
            sizes.append(self.cores_per_l2)
        if self.l2_per_chip > 1 and self.chips > 1:
            sizes.append(self.cores_per_chip)
        return sizes

    def describe(self) -> str:
        """Human-readable summary (Table II / Figure 3 style)."""
        lines = [
            f"{self.chips} chip(s) x {self.l2_per_chip} L2 x "
            f"{self.cores_per_l2} core(s) = {self.num_cores} cores",
            f"L1: {self.l1_config.size // 1024} KiB, {self.l1_config.ways}-way, "
            f"{self.l1_config.latency} cycles, "
            f"{'write-back' if self.l1_config.write_back else 'write-through'}",
            f"L2: {self.l2_config.size // 1024} KiB, {self.l2_config.ways}-way, "
            f"{self.l2_config.latency} cycles, "
            f"{'write-back' if self.l2_config.write_back else 'write-through'}"
            f", shared by {self.cores_per_l2} cores",
        ]
        return "\n".join(lines)


def harpertown(cache_scale: float = 1.0) -> Topology:
    """The paper's evaluation machine: 2 × (4-core Harpertown), Table II caches.

    ``cache_scale`` shrinks both caches proportionally — used to keep the
    cache:working-set ratio faithful when workloads run at reduced scale
    (see DESIGN.md §6).  Scaled sizes are rounded to keep set counts whole.
    """
    def scaled(cfg: CacheConfig) -> CacheConfig:
        if cache_scale == 1.0:
            return cfg
        unit = cfg.line_size * cfg.ways
        size = max(unit, int(cfg.size * cache_scale) // unit * unit)
        return CacheConfig(
            size=size, ways=cfg.ways, line_size=cfg.line_size,
            latency=cfg.latency, write_back=cfg.write_back, name=cfg.name,
        )

    base = Topology()
    return Topology(
        cores_per_l2=2,
        l2_per_chip=2,
        chips=2,
        l1_config=scaled(base.l1_config),
        l2_config=scaled(base.l2_config),
    )


def multi_level(cores_per_l2: int, l2_per_chip: int, chips: int) -> Topology:
    """Arbitrary symmetric topology with default cache geometry."""
    return Topology(cores_per_l2=cores_per_l2, l2_per_chip=l2_per_chip, chips=chips)


def nehalem(cache_scale: float = 1.0) -> Topology:
    """A Nehalem-generation machine: 2 sockets × 4 cores, one shared LLC.

    The paper names Nehalem as the other reference architecture (its L1
    D-TLB is the 64-entry size the experiments use).  Architecturally it
    differs from Harpertown in the ways that matter here: all four cores
    of a chip share one large last-level cache (modelled as the "L2"
    level), the TLB is two-level, and memory is NUMA.  Pair this topology
    with :func:`repro.machine.system.nehalem_config`.
    """
    def scaled(size: int, unit: int) -> int:
        if cache_scale == 1.0:
            return size
        return max(unit, int(size * cache_scale) // unit * unit)

    l1 = CacheConfig(size=scaled(32 * 1024, 64 * 4), ways=4, line_size=64,
                     latency=2, write_back=False, name="L1")
    llc = CacheConfig(size=scaled(8 * 1024 * 1024, 64 * 16), ways=16,
                      line_size=64, latency=14, write_back=True, name="L3")
    return Topology(
        cores_per_l2=4,   # four cores share the LLC
        l2_per_chip=1,
        chips=2,
        l1_config=l1,
        l2_config=llc,
    )
