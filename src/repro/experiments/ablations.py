"""Ablations over the design choices DESIGN.md §5 calls out.

These go beyond the paper: each sweep isolates one knob of the mechanism
or the mapper and quantifies its effect on detection accuracy, overhead,
or mapping quality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.accuracy import pearson_similarity
from repro.core.detection import DetectorConfig
from repro.core.hm_detector import HardwareManagedDetector
from repro.core.oracle import oracle_matrix
from repro.core.overhead import overhead_report
from repro.core.sm_detector import SoftwareManagedDetector
from repro.machine.simulator import Simulator
from repro.machine.system import System, SystemConfig
from repro.machine.topology import Topology, harpertown
from repro.mapping.baselines import (
    brute_force_mapping,
    greedy_mapping,
    random_mapping,
    round_robin_mapping,
)
from repro.mapping.drb import drb_mapping
from repro.mapping.hierarchical import hierarchical_mapping
from repro.mapping.quality import mapping_cost
from repro.tlb.mmu import TLBManagement
from repro.tlb.tlb import TLBConfig
from repro.util.rng import derive_seed
from repro.workloads.base import Workload
from repro.workloads.npb import make_npb_workload


def sm_sampling_sweep(
    workload_name: str = "sp",
    thresholds: Sequence[int] = (1, 2, 4, 8, 16, 64, 256),
    scale: float = 0.5,
    seed: int = 2012,
    topology: Optional[Topology] = None,
) -> List[Dict[str, float]]:
    """Accuracy-vs-overhead trade-off of the SM sampling threshold n.

    The paper picks n=100 for full-scale runs; this sweep shows the knee of
    the curve for any trace length.  Returns one record per threshold with
    the Pearson accuracy vs. the oracle and the measured overhead fraction.
    """
    topology = topology or harpertown()
    out = []
    for n in thresholds:
        wl = make_npb_workload(workload_name, scale=scale,
                               seed=derive_seed(seed, workload_name, "smsweep"))
        det = SoftwareManagedDetector(8, DetectorConfig(sm_sample_threshold=n))
        system = System(topology, SystemConfig(tlb_management=TLBManagement.SOFTWARE))
        res = Simulator(system).run(wl, detectors=[det])
        wl_oracle = make_npb_workload(workload_name, scale=scale,
                                      seed=derive_seed(seed, workload_name, "smsweep"))
        oracle = oracle_matrix(wl_oracle)
        rep = overhead_report(det.summary(), res)
        out.append({
            "threshold": float(n),
            "accuracy": pearson_similarity(det.matrix, oracle),
            "overhead": rep.overhead_fraction,
            "searches": float(det.searches_run),
        })
    return out


def hm_period_sweep(
    workload_name: str = "sp",
    periods: Sequence[int] = (20_000, 50_000, 100_000, 400_000, 1_600_000),
    scale: float = 0.5,
    seed: int = 2012,
    topology: Optional[Topology] = None,
) -> List[Dict[str, float]]:
    """Accuracy-vs-overhead trade-off of the HM scan period."""
    topology = topology or harpertown()
    out = []
    for period in periods:
        wl = make_npb_workload(workload_name, scale=scale,
                               seed=derive_seed(seed, workload_name, "hmsweep"))
        det = HardwareManagedDetector(8, DetectorConfig(hm_period_cycles=period))
        system = System(topology, SystemConfig(tlb_management=TLBManagement.HARDWARE))
        res = Simulator(system).run(wl, detectors=[det])
        wl_oracle = make_npb_workload(workload_name, scale=scale,
                                      seed=derive_seed(seed, workload_name, "hmsweep"))
        oracle = oracle_matrix(wl_oracle)
        rep = overhead_report(det.summary(), res)
        out.append({
            "period": float(period),
            "accuracy": pearson_similarity(det.matrix, oracle),
            "overhead": rep.overhead_fraction,
            "scans": float(det.scans_run),
        })
    return out


def tlb_geometry_sweep(
    workload_name: str = "bt",
    geometries: Sequence[tuple] = ((16, 4), (32, 4), (64, 4), (128, 4), (64, 64)),
    scale: float = 0.5,
    seed: int = 2012,
) -> List[Dict[str, float]]:
    """Effect of TLB size/associativity on detection accuracy.

    Larger TLBs hold entries longer — more matches but also more *stale*
    matches (false communication); the last geometry (64, 64) is fully
    associative.  The paper's default is (64, 4).
    """
    out = []
    for entries, ways in geometries:
        topo = harpertown()
        cfg = SystemConfig(
            tlb=TLBConfig(entries=entries, ways=ways),
            tlb_management=TLBManagement.SOFTWARE,
        )
        wl = make_npb_workload(workload_name, scale=scale,
                               seed=derive_seed(seed, workload_name, "tlbsweep"))
        det = SoftwareManagedDetector(8, DetectorConfig(sm_sample_threshold=4))
        res = Simulator(System(topo, cfg)).run(wl, detectors=[det])
        wl_oracle = make_npb_workload(workload_name, scale=scale,
                                      seed=derive_seed(seed, workload_name, "tlbsweep"))
        oracle = oracle_matrix(wl_oracle)
        out.append({
            "entries": float(entries),
            "ways": float(ways),
            "accuracy": pearson_similarity(det.matrix, oracle),
            "tlb_miss_rate": res.tlb_miss_rate,
            "matches": float(det.matches_found),
        })
    return out


def page_size_sweep(
    workload_name: str = "bt",
    page_sizes: Sequence[int] = (4096, 16384, 65536, 262144),
    scale: float = 0.3,
    seed: int = 2012,
    hm_period: int = 60_000,
) -> List[Dict[str, float]]:
    """Detection quality vs. page size (both mechanisms).

    Bigger pages collapse the TLB miss rate (starving SM's trigger) and
    coarsen what "sharing a page" means (inflating HM's false matches).
    Ground truth is always evaluated at 4 KiB.
    """
    from repro.tlb.pagetable import PageTableConfig

    truth = oracle_matrix(
        make_npb_workload(workload_name, scale=scale,
                          seed=derive_seed(seed, workload_name, "pagesweep")),
        page_size=4096,
    )
    out = []
    for ps in page_sizes:
        sm_cfg = SystemConfig(
            tlb=TLBConfig(page_size=ps),
            page_table=PageTableConfig(page_size=ps),
            tlb_management=TLBManagement.SOFTWARE,
        )
        sm = SoftwareManagedDetector(8, DetectorConfig(sm_sample_threshold=4))
        res = Simulator(System(harpertown(), sm_cfg)).run(
            make_npb_workload(workload_name, scale=scale,
                              seed=derive_seed(seed, workload_name, "pagesweep")),
            detectors=[sm],
        )
        hm_cfg = SystemConfig(
            tlb=TLBConfig(page_size=ps),
            page_table=PageTableConfig(page_size=ps),
        )
        hm = HardwareManagedDetector(8, DetectorConfig(hm_period_cycles=hm_period))
        Simulator(System(harpertown(), hm_cfg)).run(
            make_npb_workload(workload_name, scale=scale,
                              seed=derive_seed(seed, workload_name, "pagesweep")),
            detectors=[hm],
        )
        out.append({
            "page_size": float(ps),
            "miss_rate": res.tlb_miss_rate,
            "sm_matches": float(sm.matches_found),
            "sm_accuracy": pearson_similarity(sm.matrix, truth),
            "hm_accuracy": pearson_similarity(hm.matrix, truth),
        })
    return out


def l2_tlb_sweep(
    workload_name: str = "sp",
    l2_entries: Sequence["int | None"] = (None, 128, 512, 2048),
    scale: float = 0.3,
    seed: int = 2012,
) -> List[Dict[str, float]]:
    """Effect of a second-level TLB on the SM mechanism's sample stream.

    L2-TLB hits refill the L1 TLB without a trap, so only walk-level
    misses feed SM — Nehalem-class cores thin the signal considerably.
    """
    truth = oracle_matrix(
        make_npb_workload(workload_name, scale=scale,
                          seed=derive_seed(seed, workload_name, "l2tlb"))
    )
    out = []
    for entries in l2_entries:
        cfg = SystemConfig(
            tlb_management=TLBManagement.SOFTWARE,
            l2_tlb=(TLBConfig(entries=entries, ways=4) if entries else None),
        )
        det = SoftwareManagedDetector(8, DetectorConfig(sm_sample_threshold=4))
        system = System(harpertown(), cfg)
        Simulator(system).run(
            make_npb_workload(workload_name, scale=scale,
                              seed=derive_seed(seed, workload_name, "l2tlb")),
            detectors=[det],
        )
        out.append({
            "l2_entries": float(entries or 0),
            "walks": float(system.page_table.walks),
            "searches": float(det.searches_run),
            "accuracy": pearson_similarity(det.matrix, truth),
        })
    return out


def mapper_comparison(
    workload_name: str = "sp",
    scale: float = 0.5,
    seed: int = 2012,
    topology: Optional[Topology] = None,
    include_brute_force: bool = True,
) -> Dict[str, float]:
    """Mapping cost of each algorithm on the oracle matrix of one benchmark.

    Lower is better; brute force is the exact optimum.  This is the
    quantitative backing for the paper's choice of Edmonds matching over
    simpler heuristics.
    """
    topology = topology or harpertown()
    wl = make_npb_workload(workload_name, scale=scale,
                           seed=derive_seed(seed, workload_name, "mappers"))
    oracle = oracle_matrix(wl)
    dist = topology.distance_matrix()
    n = oracle.num_threads
    out = {
        "hierarchical": mapping_cost(oracle, hierarchical_mapping(oracle, topology), dist),
        "greedy": mapping_cost(oracle, greedy_mapping(oracle, topology), dist),
        "drb": mapping_cost(oracle, drb_mapping(oracle, topology), dist),
        "round_robin": mapping_cost(oracle, round_robin_mapping(n, topology), dist),
        "random": mapping_cost(
            oracle, random_mapping(n, topology, derive_seed(seed, "rand-map")), dist
        ),
    }
    if include_brute_force:
        out["optimal"] = mapping_cost(oracle, brute_force_mapping(oracle, topology), dist)
    return out
