"""Executes the paper's experimental protocol (Section V).

Per benchmark:

1. **Detection runs** — the workload runs under identity pinning on a
   software-managed machine with the SM detector, and on a hardware-managed
   machine with the HM detector (the paper evaluates the two mechanisms on
   their respective architectures).  The full-trace oracle matrix is
   computed alongside as ground truth.
2. **Mapping** — each detected matrix feeds the hierarchical Edmonds
   mapper (Section V-A).
3. **Performance ensemble** — the workload runs on the hardware-managed
   machine under (a) ``os_runs`` random placements (the OS-scheduler
   stand-in), and (b) ``mapped_runs`` repetitions of each of the SM and HM
   mappings.  Every run uses a fresh trace seed, so ensembles have genuine
   run-to-run variance (Table V).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.commmatrix import CommunicationMatrix
from repro.core.detection import DetectorConfig
from repro.core.hm_detector import HardwareManagedDetector
from repro.core.oracle import oracle_matrix
from repro.core.sm_detector import SoftwareManagedDetector
from repro.experiments.cache import ResultCache, config_key
from repro.experiments.config import ExperimentConfig
from repro.machine.simulator import NoiseConfig, SimConfig, SimResult, Simulator
from repro.machine.system import System, SystemConfig
from repro.machine.topology import Topology, harpertown
from repro.mapping.baselines import random_mapping
from repro.mapping.hierarchical import hierarchical_mapping
from repro.obs.context import TRACE_ENV_VAR, clear_context, install_context
from repro.obs.metrics import global_registry
from repro.obs.trace import get_tracer
from repro.tlb.mmu import TLBManagement
from repro.util.rng import derive_seed
from repro.workloads.npb import make_npb_workload


@dataclass
class MappingRuns:
    """Performance ensemble for one mapping policy."""

    label: str
    mappings: List[List[int]]
    results: List[SimResult]

    def metric(self, name: str) -> List[float]:
        """Extract one metric across runs ('execution_seconds', ...)."""
        return [float(getattr(r, name)) for r in self.results]


@dataclass
class BenchmarkResult:
    """Everything measured for one benchmark."""

    name: str
    detected: Dict[str, CommunicationMatrix]
    detector_stats: Dict[str, dict]
    detection_results: Dict[str, SimResult]
    mappings: Dict[str, List[int]]
    runs: Dict[str, MappingRuns]
    wall_seconds: float = 0.0

    def mean(self, policy: str, metric: str) -> float:
        """Ensemble mean of ``metric`` under ``policy`` (OS/SM/HM)."""
        vals = self.runs[policy].metric(metric)
        return sum(vals) / len(vals)

    def normalized_mean(self, policy: str, metric: str) -> float:
        """Policy mean over OS mean — the paper's Figures 6-9 transform.

        A zero OS baseline (e.g. invalidations in a run too short to
        rewrite any shared line) normalizes to 1.0 when the policy count
        is zero too — "no change", not "perfect reduction".
        """
        base = self.mean("OS", metric)
        val = self.mean(policy, metric)
        if base == 0:
            return 1.0 if val == 0 else float("inf")
        return val / base


class ExperimentRunner:
    """Runs the full protocol for a configuration."""

    #: Policies reported in the paper's figures, in presentation order.
    POLICIES = ("OS", "SM", "HM")

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        topology: Optional[Topology] = None,
        cache_dir: "str | None" = None,
    ):
        self.config = config or ExperimentConfig()
        self.topology = topology or harpertown(cache_scale=self.config.cache_scale)
        self.detector_config = DetectorConfig(
            sm_sample_threshold=self.config.sm_sample_threshold,
            hm_period_cycles=self.config.hm_period_cycles,
        )
        #: Optional on-disk memo of BenchmarkResults.  Sound because every
        #: random stream derives from (seed, benchmark, run label) — a
        #: result is a pure function of (config, topology, name).
        self.cache = ResultCache(cache_dir) if cache_dir else None
        #: Process pools rebuilt after a worker death (suite-level retry).
        self.pool_rebuilds = 0

    # -- pieces -------------------------------------------------------------------

    def _workload(self, name: str, run_label: object) -> Workload:
        """Fresh workload instance with a per-run derived seed."""
        return make_npb_workload(
            name,
            num_threads=self.config.num_threads,
            scale=self.config.scale,
            seed=derive_seed(self.config.seed, name, run_label),
        )

    def _system(self, management: TLBManagement) -> System:
        return System(self.topology, SystemConfig(tlb_management=management))

    def detect(self, name: str) -> Dict[str, object]:
        """Run the SM and HM detection passes plus the oracle.

        Returns dict with keys ``matrices`` ({SM, HM, oracle} →
        CommunicationMatrix), ``stats`` (detector summaries) and
        ``results`` ({SM, HM} → SimResult of the detection run).
        """
        n = self.config.num_threads
        matrices: Dict[str, CommunicationMatrix] = {}
        stats: Dict[str, dict] = {}
        results: Dict[str, SimResult] = {}

        tracer = get_tracer()
        span = (
            tracer.begin(f"detect:{name}", cat="runner", args={"threads": n})
            if tracer.enabled
            else None
        )
        try:
            wl = self._workload(name, "detect")
            sm = SoftwareManagedDetector(n, self.detector_config)
            res_sm = Simulator(self._system(TLBManagement.SOFTWARE)).run(
                wl, detectors=[sm]
            )
            matrices["SM"] = sm.matrix
            stats["SM"] = sm.summary()
            results["SM"] = res_sm

            wl = self._workload(name, "detect")
            hm = HardwareManagedDetector(n, self.detector_config)
            res_hm = Simulator(self._system(TLBManagement.HARDWARE)).run(
                wl, detectors=[hm]
            )
            matrices["HM"] = hm.matrix
            stats["HM"] = hm.summary()
            results["HM"] = res_hm

            wl = self._workload(name, "detect")
            matrices["oracle"] = oracle_matrix(
                wl, windows_per_phase=self.config.detection_windows
            )
        finally:
            if span is not None:
                tracer.end(
                    span,
                    args={
                        "sm_searches": sm.searches_run if "SM" in stats else 0,
                        "hm_scans": hm.scans_run if "HM" in stats else 0,
                    },
                )
        return {"matrices": matrices, "stats": stats, "results": results}

    def performance_run(self, name: str, mapping: Sequence[int], run_label: object) -> SimResult:
        """One performance run on the hardware-managed machine.

        With ``config.noise_rate > 0`` each run gets an independent
        OS-noise stream (physical run-to-run variance for Table V).
        """
        wl = self._workload(name, run_label)
        sim_config = SimConfig()
        if self.config.noise_rate > 0:
            sim_config = SimConfig(noise=NoiseConfig(
                preemption_rate=self.config.noise_rate,
                seed=derive_seed(self.config.seed, name, run_label, "noise"),
            ))
        return Simulator(
            self._system(TLBManagement.HARDWARE), sim_config
        ).run(wl, mapping=mapping)

    # -- full benchmark -----------------------------------------------------------

    def benchmark_key(self, name: str) -> str:
        """Cache key for one benchmark under this runner's configuration."""
        return config_key(self.config, self.topology, name)

    def run_benchmark(self, name: str) -> BenchmarkResult:
        """Detection + mapping + the full performance ensemble for ``name``.

        With a ``cache_dir`` configured, a prior result for the identical
        (config, topology, benchmark) is returned from disk instead of
        re-simulating; fresh results are stored on the way out.
        """
        reg = global_registry()
        reg.counter("runner_benchmarks_total").inc()
        if self.cache is not None:
            hit = self.cache.get(self.benchmark_key(name))
            if isinstance(hit, BenchmarkResult):
                reg.counter("runner_cache_hits_total").inc()
                return hit
        tracer = get_tracer()
        if not tracer.enabled:
            result = self._run_benchmark_uncached(name)
        else:
            span = tracer.begin(f"benchmark:{name}", cat="runner")
            try:
                result = self._run_benchmark_uncached(name)
            finally:
                tracer.end(span)
        if self.cache is not None:
            self.cache.put(self.benchmark_key(name), result)
        return result

    def _run_benchmark_uncached(self, name: str) -> BenchmarkResult:
        t0 = time.perf_counter()
        detection = self.detect(name)
        matrices = detection["matrices"]
        mappings = {
            "SM": hierarchical_mapping(matrices["SM"], self.topology),
            "HM": hierarchical_mapping(matrices["HM"], self.topology),
        }
        runs: Dict[str, MappingRuns] = {}
        # OS ensemble: a fresh random placement per run.
        os_maps = []
        os_results = []
        for r in range(self.config.os_runs):
            placement = random_mapping(
                self.config.num_threads,
                self.topology,
                derive_seed(self.config.seed, name, "os-place", r),
            )
            os_maps.append(placement)
            os_results.append(self.performance_run(name, placement, ("os", r)))
        runs["OS"] = MappingRuns("OS", os_maps, os_results)
        # SM/HM mapped ensembles: fixed mapping, varying trace seed.
        for policy in ("SM", "HM"):
            results = [
                self.performance_run(name, mappings[policy], (policy.lower(), r))
                for r in range(self.config.mapped_runs)
            ]
            runs[policy] = MappingRuns(
                policy, [mappings[policy]] * self.config.mapped_runs, results
            )
        return BenchmarkResult(
            name=name,
            detected=matrices,
            detector_stats=detection["stats"],
            detection_results=detection["results"],
            mappings=mappings,
            runs=runs,
            wall_seconds=time.perf_counter() - t0,
        )

    def run_suite(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        verbose: bool = False,
        workers: int = 1,
    ) -> Dict[str, BenchmarkResult]:
        """Run the whole benchmark set; returns {name: BenchmarkResult}.

        ``workers > 1`` fans the (independent) benchmarks out over a
        process pool.  Results are bit-identical to the serial run: every
        random stream is derived from (seed, benchmark, run label), never
        from execution order.
        """
        names = list(benchmarks or self.config.benchmarks)
        out: Dict[str, BenchmarkResult] = {}
        if workers <= 1 or len(names) <= 1:
            for name in names:
                out[name] = self.run_benchmark(name)
                if verbose:  # pragma: no cover - console convenience
                    self._progress(out[name])
            return out
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        cache_dir = str(self.cache.root) if self.cache is not None else None
        # Trace-context propagation: children inherit the parent's trace
        # id via the environment (same trick as REPRO_FAULT_PLAN), so a
        # traced suite run links worker-side spans to this process.
        tracer = get_tracer()
        ctx_installed = False
        if tracer.enabled and not os.environ.get(TRACE_ENV_VAR):
            install_context(tracer.child_context())
            ctx_installed = True
        # Worker-death tolerance: a BrokenProcessPool poisons every
        # future in the pool, so the unfinished benchmarks are requeued
        # once on a fresh pool (results are pure functions of config, so
        # a rerun is byte-identical); a second pool death is fatal.
        pending = names
        retried = False
        try:
            while pending:
                failed: List[str] = []
                broken: Optional[BaseException] = None
                with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                    futures = {
                        name: pool.submit(_run_benchmark_task, self.config,
                                          self.topology, name, cache_dir)
                        for name in pending
                    }
                    for name in pending:
                        try:
                            out[name] = futures[name].result()
                        except BrokenProcessPool as exc:
                            broken = exc
                            failed.append(name)
                            continue
                        if verbose:  # pragma: no cover - console convenience
                            self._progress(out[name])
                if not failed:
                    break
                if retried:
                    assert broken is not None
                    raise broken
                retried = True
                self.pool_rebuilds += 1
                global_registry().counter("runner_pool_rebuilds_total").inc()
                pending = failed
        finally:
            if ctx_installed:
                clear_context()
        return out

    @staticmethod
    def _progress(r: BenchmarkResult) -> None:  # pragma: no cover - console
        """One status line per finished benchmark."""
        print(
            f"{r.name}: exec SM/OS = {r.normalized_mean('SM', 'execution_seconds'):.3f}, "
            f"HM/OS = {r.normalized_mean('HM', 'execution_seconds'):.3f} "
            f"({r.wall_seconds:.1f}s wall)"
        )


def _run_benchmark_task(
    config: ExperimentConfig,
    topology: Topology,
    name: str,
    cache_dir: "str | None" = None,
) -> BenchmarkResult:
    """Process-pool entry point (must be module-level to pickle).

    The fault site lets chaos tests kill a pool worker deterministically
    (a `hard` crash event with a latch file fires exactly once across
    the forked children) and prove the suite-level requeue path.
    """
    from repro.faults.injector import get_injector
    from repro.faults.plan import SITE_RUNNER_BENCHMARK

    get_injector().fire(SITE_RUNNER_BENCHMARK)
    return ExperimentRunner(config, topology, cache_dir=cache_dir).run_benchmark(name)
