"""The numbers the paper reports, for side-by-side comparison.

Transcribed from Tables III, IV and V and the headline claims of
Cruz/Diener/Navaux (IPDPS 2012).  Keys are benchmark names in lower case;
policies are "OS", "SM", "HM".
"""

from __future__ import annotations

from typing import Dict

BENCHMARKS = ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua")

#: Table III — software-managed TLB statistics, all values in percent.
TABLE3_SM: Dict[str, Dict[str, float]] = {
    "bt": {"tlb_miss_rate": 0.010, "sampled": 0.655, "overhead": 0.195},
    "cg": {"tlb_miss_rate": 0.015, "sampled": 0.942, "overhead": 0.249},
    "ep": {"tlb_miss_rate": 0.002, "sampled": 0.998, "overhead": 0.027},
    "ft": {"tlb_miss_rate": 0.007, "sampled": 0.961, "overhead": 0.120},
    "is": {"tlb_miss_rate": 0.333, "sampled": 0.993, "overhead": 4.077},
    "lu": {"tlb_miss_rate": 0.026, "sampled": 0.875, "overhead": 0.519},
    "mg": {"tlb_miss_rate": 0.008, "sampled": 0.820, "overhead": 0.117},
    "sp": {"tlb_miss_rate": 0.032, "sampled": 0.909, "overhead": 0.751},
    "ua": {"tlb_miss_rate": 0.005, "sampled": 0.829, "overhead": 0.080},
}

#: Detection routine costs measured by the paper (cycles).
SM_ROUTINE_CYCLES = 231
HM_ROUTINE_CYCLES = 84_297

#: Table IV — execution time in seconds per policy.
TABLE4_EXECUTION_TIME: Dict[str, Dict[str, float]] = {
    "bt": {"OS": 0.74, "SM": 0.68, "HM": 0.69},
    "cg": {"OS": 0.13, "SM": 0.13, "HM": 0.13},
    "ep": {"OS": 0.48, "SM": 0.47, "HM": 0.47},
    "ft": {"OS": 0.10, "SM": 0.10, "HM": 0.10},
    "is": {"OS": 0.06, "SM": 0.06, "HM": 0.06},
    "lu": {"OS": 2.39, "SM": 2.27, "HM": 2.27},
    "mg": {"OS": 0.23, "SM": 0.22, "HM": 0.22},
    "sp": {"OS": 2.53, "SM": 2.14, "HM": 2.25},
    "ua": {"OS": 2.19, "SM": 2.06, "HM": 2.06},
}

#: Table IV — invalidations per second.
TABLE4_INVALIDATIONS: Dict[str, Dict[str, float]] = {
    "bt": {"OS": 9_845_216, "SM": 7_019_908, "HM": 7_499_308},
    "cg": {"OS": 3_831_746, "SM": 3_624_698, "HM": 3_747_079},
    "ep": {"OS": 121_230, "SM": 103_558, "HM": 105_117},
    "ft": {"OS": 16_154_353, "SM": 16_571_898, "HM": 16_544_292},
    "is": {"OS": 9_754_232, "SM": 9_681_120, "HM": 9_637_287},
    "lu": {"OS": 14_457_991, "SM": 12_395_757, "HM": 13_745_080},
    "mg": {"OS": 35_970_058, "SM": 35_792_412, "HM": 35_439_765},
    "sp": {"OS": 17_749_230, "SM": 13_535_357, "HM": 13_956_912},
    "ua": {"OS": 7_361_187, "SM": 4_609_197, "HM": 4_600_673},
}

#: Table IV — snoop transactions per second.
TABLE4_SNOOPS: Dict[str, Dict[str, float]] = {
    "bt": {"OS": 7_196_937, "SM": 3_612_138, "HM": 4_263_300},
    "cg": {"OS": 10_374_266, "SM": 10_395_271, "HM": 10_492_865},
    "ep": {"OS": 27_870, "SM": 21_560, "HM": 22_666},
    "ft": {"OS": 5_172_957, "SM": 5_288_628, "HM": 5_298_599},
    "is": {"OS": 11_461_581, "SM": 11_889_910, "HM": 11_830_896},
    "lu": {"OS": 12_706_165, "SM": 8_739_948, "HM": 9_881_274},
    "mg": {"OS": 4_093_348, "SM": 1_519_446, "HM": 2_482_490},
    "sp": {"OS": 10_668_132, "SM": 5_874_685, "HM": 6_757_793},
    "ua": {"OS": 5_008_487, "SM": 3_055_559, "HM": 3_064_284},
}

#: Table IV — L2 misses per second.
TABLE4_L2_MISSES: Dict[str, Dict[str, float]] = {
    "bt": {"OS": 248_962, "SM": 212_403, "HM": 207_314},
    "cg": {"OS": 1_144_400, "SM": 1_169_066, "HM": 1_176_111},
    "ep": {"OS": 3_365, "SM": 3_159, "HM": 3_240},
    "ft": {"OS": 460_250, "SM": 473_133, "HM": 472_221},
    "is": {"OS": 1_007_312, "SM": 914_644, "HM": 908_205},
    "lu": {"OS": 656_734, "SM": 575_242, "HM": 669_864},
    "mg": {"OS": 939_658, "SM": 924_153, "HM": 953_271},
    "sp": {"OS": 339_850, "SM": 276_327, "HM": 263_512},
    "ua": {"OS": 741_887, "SM": 610_845, "HM": 610_188},
}

#: Table V — relative standard deviations (percent) of the execution time.
TABLE5_EXECUTION_TIME_STD: Dict[str, Dict[str, float]] = {
    "bt": {"OS": 3.44, "SM": 4.15, "HM": 0.79},
    "cg": {"OS": 11.35, "SM": 2.68, "HM": 4.62},
    "ep": {"OS": 5.13, "SM": 1.98, "HM": 1.87},
    "ft": {"OS": 20.55, "SM": 6.83, "HM": 6.13},
    "is": {"OS": 21.26, "SM": 4.62, "HM": 11.11},
    "lu": {"OS": 6.98, "SM": 0.20, "HM": 1.17},
    "mg": {"OS": 9.22, "SM": 2.82, "HM": 3.11},
    "sp": {"OS": 1.35, "SM": 0.11, "HM": 0.11},
    "ua": {"OS": 1.76, "SM": 0.25, "HM": 1.21},
}

#: Headline claims (Section VI / abstract).
HEADLINES = {
    "best_execution_improvement": ("sp", 0.153),   # -15.3% execution time
    "best_l2_miss_reduction": ("sp", 0.311),       # -31.1% cache misses
    "best_invalidation_reduction": ("ua", 0.41),   # -41% invalidations
    "best_snoop_reduction": ("mg", 0.654),         # -65.4% snoops
    "homogeneous_benchmarks": ("cg", "ep", "ft"),  # no improvement expected
}


def normalized_table4(metric: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Table IV values normalized to the OS policy (the Figures 6-9 view)."""
    out = {}
    for bench, row in metric.items():
        base = row["OS"]
        out[bench] = {k: (v / base if base else 0.0) for k, v in row.items()}
    return out
