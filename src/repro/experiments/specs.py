"""Declarative experiment specs (ROADMAP item 5).

A spec is a small frozen dataclass — kernels x topologies x mechanisms x
seeds x config overrides — that round-trips through TOML and is executed
by one generalized runner instead of a hand-rolled ``bench_*.py`` sweep
script.  The runner fans independent *cells* (one benchmark protocol run
or one ablation sweep point) out over a work-stealing process pool and
memoizes every cell through :mod:`repro.experiments.cache` config-hash
keys, so any two specs — or a spec and the legacy suite fixture — that
agree on a cell's configuration share one simulation, cluster-wide.

Four pipelines cover the bench corpus:

``protocol``
    The paper's full Section-V protocol per (kernel, seed, topology)
    cell: detection (SM + HM + oracle), hierarchical mapping, and the
    OS/SM/HM performance ensembles.  Cells delegate to
    :class:`~repro.experiments.runner.ExperimentRunner`, inheriting its
    on-disk memoization and fault sites.
``ablation``
    One knob swept over ``spec.sweep`` values; each sweep point is an
    independently memoized cell (``variant`` picks the routine, e.g.
    ``sm_sampling``).
``engine``
    The scalar-vs-batched engine parity + speedup smoke.  Counter rows
    are deterministic and asserted bit-identical; wall timings are
    reported but never cached.
``static``
    Render-only reports (Table I/II) with no simulation cells.

Reports are declared by name in the spec and rendered byte-identically
to the legacy scripts' artifacts — the differential golden harness in
``tests/experiments/test_spec_differential.py`` holds that line.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache, config_key
from repro.experiments.config import PAPER_BENCHMARKS, ExperimentConfig
from repro.experiments.runner import BenchmarkResult, ExperimentRunner, _run_benchmark_task
from repro.machine.topology import Topology, harpertown, nehalem
from repro.util.validation import ValidationError

#: Bump when spec semantics change incompatibly (axes meaning, report
#: contracts).  Written into dumped TOML as ``schema``.
SPEC_SCHEMA = 1

#: Topology axis registry: name -> factory(cache_scale) -> Topology.
TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "harpertown": harpertown,
    "nehalem": nehalem,
}

#: Execution pipelines a spec may select.
PIPELINES = ("protocol", "ablation", "engine", "static")

#: Ablation variants: name -> (sweep axis, runner).  Runners live in
#: :mod:`repro.experiments.ablations`; each is a pure function of its
#: arguments, which is what makes per-point memoization sound.
ABLATION_AXES: Dict[str, str] = {
    "sm_sampling": "thresholds",
    "hm_period": "periods",
}

#: Detection mechanisms the paper compares.
MECHANISMS = ("SM", "HM")

#: Counters that must match bit-for-bit between engines (the acceptance
#: gate for the fast path; shared with ``benchmarks/bench_engine_speedup``).
ENGINE_COMPARED_FIELDS = (
    "execution_cycles",
    "core_cycles",
    "accesses",
    "invalidations",
    "snoop_transactions",
    "l2_misses",
    "memory_fetches",
    "l1_sibling_invalidations",
    "tlb_accesses",
    "tlb_misses",
    "inter_chip_transactions",
    "intra_chip_transactions",
)

#: ExperimentConfig fields a spec's ``overrides`` (or runtime params) may
#: set.  ``benchmarks`` and ``seed`` are spec axes (``kernels``/``seeds``),
#: not overridable knobs.
_CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(ExperimentConfig)
    if f.name not in ("benchmarks", "seed")
)

#: Runtime-only parameters (never part of a spec file): pipeline extras.
_EXTRA_PARAMS = ("speedup_floor", "engine_repeats")


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ValidationError(message)


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: axes, overrides, and report names.

    Frozen and order-insensitively comparable; ``loads_spec(dumps_spec(s))
    == s`` is a tested identity.  Validation happens at construction, so
    a spec object in hand is always well-formed.
    """

    name: str
    pipeline: str = "protocol"
    #: Ablation routine (``ABLATION_AXES`` key); empty for other pipelines.
    variant: str = ""
    kernels: Tuple[str, ...] = ()
    topologies: Tuple[str, ...] = ("harpertown",)
    mechanisms: Tuple[str, ...] = MECHANISMS
    seeds: Tuple[int, ...] = (2012,)
    #: Sweep axis -> values (ablation pipeline only), e.g.
    #: ``{"thresholds": (1, 4, 16)}``.
    sweep: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)
    #: ExperimentConfig field overrides baked into the spec's identity.
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Report names from :data:`REPORTS` rendered after the cells finish.
    reports: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        for f in ("kernels", "topologies", "mechanisms", "reports"):
            coerce(self, f, tuple(getattr(self, f)))
        coerce(self, "seeds", tuple(int(s) for s in self.seeds))
        coerce(self, "sweep", {str(k): tuple(v) for k, v in dict(self.sweep).items()})
        coerce(self, "overrides", dict(self.overrides))
        self._validate()

    def _validate(self) -> None:
        _check(bool(self.name) and not set(self.name) - _NAME_ALPHABET,
               f"spec name {self.name!r} must be non-empty [a-z0-9_-]")
        _check(self.pipeline in PIPELINES,
               f"unknown pipeline {self.pipeline!r} (expected one of {PIPELINES})")
        for k in self.kernels:
            _check(k in PAPER_BENCHMARKS, f"unknown kernel {k!r}")
        _check(len(set(self.kernels)) == len(self.kernels), "duplicate kernels")
        _check(bool(self.topologies), "spec needs at least one topology")
        for t in self.topologies:
            _check(t in TOPOLOGIES,
                   f"unknown topology {t!r} (expected one of {sorted(TOPOLOGIES)})")
        for m in self.mechanisms:
            _check(m in MECHANISMS, f"unknown mechanism {m!r}")
        _check(bool(self.seeds), "spec needs at least one seed")
        for s in self.seeds:
            _check(s >= 0, f"seed {s} must be >= 0")
        if self.pipeline == "ablation":
            _check(self.variant in ABLATION_AXES,
                   f"unknown ablation variant {self.variant!r} "
                   f"(expected one of {sorted(ABLATION_AXES)})")
            axis = ABLATION_AXES[self.variant]
            _check(set(self.sweep) == {axis},
                   f"ablation {self.variant!r} sweeps exactly one axis {axis!r}, "
                   f"got {sorted(self.sweep)}")
            _check(bool(self.sweep[axis]), f"sweep axis {axis!r} is empty")
        else:
            _check(self.variant == "",
                   f"variant is only valid for the ablation pipeline, got {self.variant!r}")
            _check(not self.sweep, "sweep is only valid for the ablation pipeline")
        if self.pipeline in ("protocol", "ablation", "engine"):
            _check(bool(self.kernels), f"{self.pipeline} spec needs at least one kernel")
        validate_overrides(self.overrides)
        for r in self.reports:
            _check(r in REPORTS,
                   f"unknown report {r!r} (expected one of {sorted(REPORTS)})")

    # -- derived --------------------------------------------------------------

    def config(
        self,
        seed: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
    ) -> ExperimentConfig:
        """The ExperimentConfig for one seed, params layered over overrides."""
        merged: Dict[str, Any] = dict(self.overrides)
        for k, v in dict(params or {}).items():
            if k in _CONFIG_FIELDS:
                merged[k] = v
        return ExperimentConfig(
            benchmarks=self.kernels or PAPER_BENCHMARKS,
            seed=self.seeds[0] if seed is None else seed,
            **merged,
        )


_NAME_ALPHABET = set("abcdefghijklmnopqrstuvwxyz0123456789_-")


def validate_overrides(overrides: Mapping[str, Any]) -> None:
    """Reject override keys that are not ExperimentConfig knobs."""
    unknown = sorted(set(overrides) - set(_CONFIG_FIELDS))
    _check(not unknown,
           f"unknown override key(s) {unknown} (valid: {sorted(_CONFIG_FIELDS)})")


# -- TOML round-trip ---------------------------------------------------------

def spec_from_dict(data: Mapping[str, Any]) -> ExperimentSpec:
    """Build a validated spec from a parsed TOML table."""
    _check(isinstance(data, dict), "spec document must be a TOML table")
    payload = dict(data)
    schema = payload.pop("schema", SPEC_SCHEMA)
    _check(schema == SPEC_SCHEMA,
           f"spec schema {schema!r} not supported (this build reads {SPEC_SCHEMA})")
    known = {f.name for f in dataclasses.fields(ExperimentSpec)}
    unknown = sorted(set(payload) - known)
    _check(not unknown, f"unknown spec key(s) {unknown} (valid: {sorted(known)})")
    try:
        return ExperimentSpec(**payload)
    except TypeError as exc:  # e.g. name missing entirely
        raise ValidationError(str(exc)) from exc


def loads_spec(text: str) -> ExperimentSpec:
    """Parse a spec from TOML text."""
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValidationError(f"spec is not valid TOML: {exc}") from exc
    return spec_from_dict(data)


def load_spec(path: "str | Path") -> ExperimentSpec:
    """Load a spec from a ``.toml`` file."""
    return loads_spec(Path(path).read_text())


def _toml_value(value: Any) -> str:
    """Render one TOML value.

    JSON string escaping is valid TOML basic-string escaping (``\\"``,
    ``\\\\``, ``\\n``, ``\\uXXXX`` are shared), so strings go through
    ``json.dumps``; bool must be checked before int (bool is an int
    subclass and would otherwise print 1/0, which TOML reads back as
    integers, breaking the round-trip identity).
    """
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        return repr(value)  # repr always keeps '.' or an exponent
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ValidationError(f"cannot render {type(value).__name__} value {value!r} as TOML")


def dumps_spec(spec: ExperimentSpec) -> str:
    """Serialize a spec to TOML such that ``loads_spec`` restores it exactly."""
    lines = [f"schema = {SPEC_SCHEMA}"]
    for f in dataclasses.fields(ExperimentSpec):
        value = getattr(spec, f.name)
        if isinstance(value, dict):
            continue  # tables are rendered after all scalar keys
        lines.append(f"{f.name} = {_toml_value(value)}")
    for f in ("sweep", "overrides"):
        table: Mapping[str, Any] = getattr(spec, f)
        if table:
            lines.append("")
            lines.append(f"[{f}]")
            for k in sorted(table):
                lines.append(f"{k} = {_toml_value(table[k])}")
    return "\n".join(lines) + "\n"


def dump_spec(spec: ExperimentSpec, path: "str | Path") -> None:
    """Write a spec to a ``.toml`` file."""
    Path(path).write_text(dumps_spec(spec))


# -- execution ---------------------------------------------------------------

@dataclass
class SpecRun:
    """Everything produced by one :func:`run_spec` invocation."""

    spec: ExperimentSpec
    #: Primary-grid config (first seed) after runtime params were applied.
    config: ExperimentConfig
    #: Protocol: {kernel: BenchmarkResult} for the primary (topology, seed).
    #: Ablation: sweep records in sweep order.  Engine: stats dict.
    results: Any
    #: Full grid for multi-seed/topology specs:
    #: {(topology, seed): {kernel: BenchmarkResult}} (protocol only).
    grid: Dict[Tuple[str, int], Dict[str, BenchmarkResult]]
    #: Deterministic one-line-per-cell summary (stable across runs).
    rows: List[str]
    #: Rendered artifacts, byte-identical to the legacy bench outputs.
    artifacts: Dict[str, str]
    cache_hits: int = 0
    cache_misses: int = 0
    pool_rebuilds: int = 0


def run_spec(
    spec: ExperimentSpec,
    params: Optional[Mapping[str, Any]] = None,
    workers: int = 1,
    cache_dir: "str | None" = None,
    cache_bytes: Optional[int] = None,
    out_dir: "str | Path | None" = None,
) -> SpecRun:
    """Execute a spec: fan cells out, memoize, render reports.

    ``params`` layers runtime knobs (typically scale/ensemble sizes from
    the bench environment) over ``spec.overrides``; keys must be
    ExperimentConfig fields or one of the pipeline extras
    (``speedup_floor``, ``engine_repeats``).
    """
    params = dict(params or {})
    unknown = sorted(set(params) - set(_CONFIG_FIELDS) - set(_EXTRA_PARAMS))
    _check(not unknown, f"unknown runtime param(s) {unknown}")
    cache = ResultCache(cache_dir, max_bytes=cache_bytes) if cache_dir else None
    run = _PIPELINE_RUNNERS[spec.pipeline](spec, params, workers, cache)
    for name in spec.reports:
        run.artifacts.update(REPORTS[name](run))
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, text in run.artifacts.items():
            (out / name).write_text(text + "\n")
    return run


def _steal_cells(
    tasks: Mapping[Any, Tuple[Any, ...]],
    workers: int,
) -> Tuple[Dict[Any, Any], int]:
    """Run ``{cell: task-args}`` over a work-stealing process pool.

    Submit-per-cell gives natural work stealing: idle workers pull the
    next pending cell the moment they finish one, so a straggler kernel
    never serializes the grid.  A BrokenProcessPool requeues the
    unfinished cells once on a fresh pool (cells are pure functions of
    their arguments, so the rerun is byte-identical); a second pool
    death is fatal.  Returns (results, pool_rebuilds).
    """
    out: Dict[Any, Any] = {}
    if workers <= 1 or len(tasks) <= 1:
        for cell, args in tasks.items():
            out[cell] = _spec_cell_task(*args)
        return out, 0
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pending = list(tasks)
    rebuilds = 0
    retried = False
    while pending:
        failed: List[Any] = []
        broken: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {cell: pool.submit(_spec_cell_task, *tasks[cell])
                       for cell in pending}
            for cell in pending:
                try:
                    out[cell] = futures[cell].result()
                except BrokenProcessPool as exc:
                    broken = exc
                    failed.append(cell)
        if not failed:
            break
        if retried:
            assert broken is not None
            raise broken
        retried = True
        rebuilds += 1
        pending = failed
    return out, rebuilds


def _spec_cell_task(kind: str, *args: Any) -> Any:
    """Process-pool entry point for one spec cell (module-level to pickle)."""
    if kind == "benchmark":
        return _run_benchmark_task(*args)
    if kind == "ablation":
        return _ablation_cell(*args)
    raise ValueError(f"unknown cell kind {kind!r}")


def _ablation_cell(
    variant: str,
    kernel: str,
    scale: float,
    seed: int,
    topology: Topology,
    point: float,
    cache_dir: "str | None",
) -> Dict[str, float]:
    """One memoized ablation sweep point.

    Sweep routines build fresh workloads per point from a seed derived
    only from (seed, kernel), so a single-point call returns exactly the
    record the full legacy sweep would have produced at that point.
    """
    from repro.experiments import ablations

    key = None
    cache = ResultCache(cache_dir) if cache_dir else None
    if cache is not None:
        key = _ablation_key(variant, kernel, scale, seed, topology, point)
        hit = cache.get(key)
        if isinstance(hit, dict):
            return hit
    sweep = getattr(ablations, f"{variant}_sweep")
    axis = ABLATION_AXES[variant]
    kwargs = {axis: (point,), "scale": scale, "seed": seed, "topology": topology}
    record = sweep(kernel, **kwargs)[0]
    if cache is not None:
        cache.put(key, record)
    return record


def _ablation_key(
    variant: str,
    kernel: str,
    scale: float,
    seed: int,
    topology: Topology,
    point: float,
) -> str:
    return config_key("spec-ablation", variant, kernel, float(scale),
                      int(seed), topology, point)


def _run_protocol(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    workers: int,
    cache: Optional[ResultCache],
) -> SpecRun:
    cache_dir = str(cache.root) if cache is not None else None
    grid: Dict[Tuple[str, int], Dict[str, BenchmarkResult]] = {}
    hits = misses = 0
    tasks: Dict[Tuple[str, int, str], Tuple[Any, ...]] = {}
    for topo_name in spec.topologies:
        for seed in spec.seeds:
            config = spec.config(seed, params)
            topology = TOPOLOGIES[topo_name](cache_scale=config.cache_scale)
            runner = ExperimentRunner(config, topology, cache_dir=cache_dir)
            grid[(topo_name, seed)] = {}
            for kernel in spec.kernels or PAPER_BENCHMARKS:
                if cache is not None:
                    warm = cache.get(runner.benchmark_key(kernel))
                    if isinstance(warm, BenchmarkResult):
                        grid[(topo_name, seed)][kernel] = warm
                        hits += 1
                        continue
                misses += 1
                tasks[(topo_name, seed, kernel)] = (
                    "benchmark", config, topology, kernel, cache_dir)
    fresh, rebuilds = _steal_cells(tasks, workers)
    for (topo_name, seed, kernel), result in fresh.items():
        grid[(topo_name, seed)][kernel] = result
    primary_key = (spec.topologies[0], spec.seeds[0])
    results = {k: grid[primary_key][k] for k in (spec.kernels or PAPER_BENCHMARKS)}
    rows = []
    for (topo_name, seed), cells in grid.items():
        for kernel in (spec.kernels or PAPER_BENCHMARKS):
            r = cells[kernel]
            rows.append(
                f"{topo_name}:{seed}:{kernel} "
                f"SM/OS={r.normalized_mean('SM', 'execution_seconds'):.6f} "
                f"HM/OS={r.normalized_mean('HM', 'execution_seconds'):.6f}"
            )
    return SpecRun(spec=spec, config=spec.config(params=params), results=results,
                   grid=grid, rows=rows, artifacts={}, cache_hits=hits,
                   cache_misses=misses, pool_rebuilds=rebuilds)


def _run_ablation(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    workers: int,
    cache: Optional[ResultCache],
) -> SpecRun:
    cache_dir = str(cache.root) if cache is not None else None
    config = spec.config(params=params)
    axis = ABLATION_AXES[spec.variant]
    points = spec.sweep[axis]
    kernel = spec.kernels[0]
    seed = spec.seeds[0]
    topology = TOPOLOGIES[spec.topologies[0]](cache_scale=config.cache_scale)
    hits = misses = 0
    tasks: Dict[float, Tuple[Any, ...]] = {}
    records: Dict[float, Dict[str, float]] = {}
    for point in points:
        if cache is not None:
            warm = cache.get(
                _ablation_key(spec.variant, kernel, config.scale, seed, topology, point)
            )
            if isinstance(warm, dict):
                records[point] = warm
                hits += 1
                continue
        misses += 1
        tasks[point] = ("ablation", spec.variant, kernel, config.scale,
                        seed, topology, point, cache_dir)
    fresh, rebuilds = _steal_cells(tasks, workers)
    records.update(fresh)
    ordered = [records[p] for p in points]
    axis_key = axis[:-1] if axis.endswith("s") else axis
    rows = [
        f"{kernel} {axis_key}={p:g} "
        + " ".join(f"{k}={v:.6f}" for k, v in sorted(rec.items()) if k != axis_key)
        for p, rec in zip(points, ordered)
    ]
    return SpecRun(spec=spec, config=config, results=ordered, grid={},
                   rows=rows, artifacts={}, cache_hits=hits,
                   cache_misses=misses, pool_rebuilds=rebuilds)


def _run_engine(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    workers: int,
    cache: Optional[ResultCache],
) -> SpecRun:
    """Scalar-vs-batched parity + speedup smoke (never cached: it times).

    Counter bit-identity is the correctness gate; the speedup floor is a
    perf gate that only arms when ``params['speedup_floor'] > 0``.
    """
    import time

    from repro.machine.simulator import SimConfig, Simulator
    from repro.machine.system import System
    from repro.workloads.npb import make_npb_workload

    config = spec.config(params=params)
    kernel = spec.kernels[0]
    repeats = int(params.get("engine_repeats", 2))
    topology = TOPOLOGIES[spec.topologies[0]](cache_scale=config.cache_scale)

    def timed(engine: str):
        wl = make_npb_workload(kernel, num_threads=config.num_threads,
                               scale=config.scale, seed=config.seed)
        wl.phases()  # materialize the trace outside the timed region
        best = float("inf")
        result = None
        for _ in range(repeats):
            sim = Simulator(System(topology), SimConfig(engine=engine))
            t0 = time.perf_counter()
            result = sim.run(wl)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_scalar, r_scalar = timed("scalar")
    t_batched, r_batched = timed("batched")
    a = dataclasses.asdict(r_scalar)
    b = dataclasses.asdict(r_batched)
    for f in ENGINE_COMPARED_FIELDS:
        if a[f] != b[f]:
            raise AssertionError(
                f"engine divergence in {f}: scalar={a[f]!r} batched={b[f]!r}")
    speedup = t_scalar / t_batched if t_batched else float("inf")
    floor = float(params.get("speedup_floor", 0.0))
    if floor > 0 and speedup < floor:
        raise AssertionError(
            f"batched engine only {speedup:.2f}x faster than scalar "
            f"(floor {floor}x) — fast path regressed")
    stats = {
        "kernel": kernel,
        "scale": config.scale,
        "accesses": a["accesses"],
        "scalar_seconds": t_scalar,
        "batched_seconds": t_batched,
        "speedup": speedup,
    }
    rows = [f"{kernel} {f}={a[f]}" for f in ENGINE_COMPARED_FIELDS]
    return SpecRun(spec=spec, config=config, results=stats, grid={},
                   rows=rows, artifacts={}, cache_misses=1)


def _run_static(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    workers: int,
    cache: Optional[ResultCache],
) -> SpecRun:
    config = spec.config(params=params)
    return SpecRun(spec=spec, config=config, results={}, grid={},
                   rows=[], artifacts={})


_PIPELINE_RUNNERS: Dict[str, Callable[..., SpecRun]] = {
    "protocol": _run_protocol,
    "ablation": _run_ablation,
    "engine": _run_engine,
    "static": _run_static,
}


# -- reports -----------------------------------------------------------------
#
# Each report maps a finished SpecRun to {artifact filename: text}.  The
# texts are byte-identical to what the legacy bench scripts wrote; the
# differential harness compares them against fresh transcriptions of the
# pre-port pipelines.

def _report_fig4(run: SpecRun) -> Dict[str, str]:
    from repro.experiments.figures import fig4, heatmap_svgs

    maps = fig4(run.results)
    out = {"fig4_sm_patterns.txt": "\n\n".join(maps[n] for n in sorted(maps))}
    mechanism = run.spec.mechanisms[0] if run.spec.mechanisms else "SM"
    for name, svg in heatmap_svgs(run.results, mechanism).items():
        out[f"fig4_{name}.svg"] = svg
    return out


def _figure_report(number: int, stem: str) -> Callable[[SpecRun], Dict[str, str]]:
    def render(run: SpecRun) -> Dict[str, str]:
        from repro.experiments import figures
        from repro.experiments.figures import figure_svg

        text = getattr(figures, f"fig{number}")(run.results)
        return {f"fig{number}_{stem}.txt": text,
                f"fig{number}_{stem}.svg": figure_svg(run.results, number)}
    return render


def _report_table1(run: SpecRun) -> Dict[str, str]:
    from repro.experiments.tables import table1

    return {"table1_mechanisms.txt": table1()}


def _report_table2(run: SpecRun) -> Dict[str, str]:
    from repro.experiments.tables import table2

    topology = TOPOLOGIES[run.spec.topologies[0]](cache_scale=run.config.cache_scale)
    return {"table2_machine.txt": table2(topology)}


def _table_report(number: int, stem: str) -> Callable[[SpecRun], Dict[str, str]]:
    def render(run: SpecRun) -> Dict[str, str]:
        from repro.experiments import tables

        return {f"table{number}_{stem}.txt":
                getattr(tables, f"table{number}")(run.results)}
    return render


def _report_ablation(run: SpecRun) -> Dict[str, str]:
    from repro.util.render import format_table

    if run.spec.variant == "sm_sampling":
        rows = [
            [int(r["threshold"]), f"{r['accuracy']:.3f}",
             f"{100 * r['overhead']:.3f}%", int(r["searches"])]
            for r in run.results
        ]
        text = format_table(
            rows, header=["n (sample 1/n misses)", "accuracy (Pearson)",
                          "overhead", "searches"])
        return {"ablation_sm_sampling.txt": text}
    rows = [
        [f"{v:g}" for _, v in sorted(r.items())] for r in run.results
    ]
    text = format_table(rows, header=sorted(run.results[0]))
    return {f"ablation_{run.spec.variant}.txt": text}


def _report_noise_variance(run: SpecRun) -> Dict[str, str]:
    from repro.util.render import format_table
    from repro.util.stats import summarize

    rows = []
    for name, r in run.results.items():
        row = [name.upper()]
        for policy in ("OS", "SM", "HM"):
            cv = summarize(r.runs[policy].metric("execution_cycles")).relative_std
            row.append(f"{100 * cv:.2f}%")
        rows.append(row)
    text = format_table(rows, header=["bench", "OS std", "SM std", "HM std"])
    return {"ext_noise_variance.txt": text}


def _report_engine_speedup(run: SpecRun) -> Dict[str, str]:
    text = "\n".join(f"{k}: {v}" for k, v in run.results.items())
    return {"engine_speedup.txt": text}


REPORTS: Dict[str, Callable[[SpecRun], Dict[str, str]]] = {
    "fig4": _report_fig4,
    "fig6": _figure_report(6, "exec_time"),
    "fig7": _figure_report(7, "invalidations"),
    "fig8": _figure_report(8, "snoops"),
    "fig9": _figure_report(9, "l2_misses"),
    "table1": _report_table1,
    "table2": _report_table2,
    "table3": _table_report(3, "accuracy"),
    "table4": _table_report(4, "absolute"),
    "table5": _table_report(5, "variability"),
    "ablation": _report_ablation,
    "noise_variance": _report_noise_variance,
    "engine_speedup": _report_engine_speedup,
}
