"""Spec-platform smoke check: cold run, warm run, warm must be all hits.

Run via ``make spec-smoke`` (wired into ``make ci``) or directly::

    PYTHONPATH=src python -m repro.experiments.spec_smoke

Executes the ``ablation_sampling`` spec twice at a CI-sized scale into a
fresh temporary cache.  The cold pass must simulate every cell; the warm
pass must hit the cache for every cell and reproduce the cold pass's
rendered artifact byte-for-byte.  That exercises, end to end: TOML spec
loading, the grid runner, the on-disk result cache's key stability, and
the report renderer.  Exit status is 0 on success — the CI contract.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments.specs import load_spec, run_spec

SPEC = Path(__file__).resolve().parents[3] / "benchmarks" / "specs" / \
    "ablation_sampling.toml"
PARAMS = {"scale": 0.08}


def main() -> int:
    """Run the cold/warm gate; returns the process exit code."""
    spec = load_spec(SPEC)
    cells = len(spec.sweep["thresholds"])
    with tempfile.TemporaryDirectory(prefix="repro-spec-smoke-") as cache:
        cold = run_spec(spec, params=PARAMS, cache_dir=cache)
        if cold.cache_misses != cells or cold.cache_hits != 0:
            print(f"spec-smoke: cold run expected {cells} misses, got "
                  f"{cold.cache_misses} misses / {cold.cache_hits} hits",
                  file=sys.stderr)
            return 1
        warm = run_spec(spec, params=PARAMS, cache_dir=cache)
        if warm.cache_hits != cells or warm.cache_misses != 0:
            print(f"spec-smoke: warm run expected {cells} hits, got "
                  f"{warm.cache_hits} hits / {warm.cache_misses} misses",
                  file=sys.stderr)
            return 1
        if warm.artifacts != cold.artifacts:
            print("spec-smoke: warm artifacts drifted from cold run",
                  file=sys.stderr)
            return 1
    print(f"spec-smoke: OK ({spec.name}: {cells} cells cold, "
          f"{cells} cached warm, artifacts byte-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
