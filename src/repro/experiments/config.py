"""Experiment configuration.

The defaults reproduce the paper's setup at a reduced *scale* so the whole
suite runs in minutes on a laptop.  Two knobs deliberately deviate from
the paper's Table I values and scale with trace length instead:

* ``sm_sample_threshold`` — the paper samples 1 of every 100 TLB misses of
  runs with billions of accesses; our scaled traces have 10⁴-10⁶ accesses,
  so sampling is denser (default 1/8) to collect a comparable number of
  search events.  The ablation bench sweeps this knob.
* ``hm_period_cycles`` — likewise the paper's 10M-cycle scan period
  assumes multi-second runs; scaled runs of ~10⁶ cycles use a
  proportionally shorter period.

Both faithful values are available by constructing a config with
``sm_sample_threshold=100, hm_period_cycles=10_000_000`` and a large
``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.util.validation import check_positive


#: The paper's benchmark set (NPB minus DC), in its presentation order.
PAPER_BENCHMARKS: Tuple[str, ...] = (
    "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one full reproduction run.

    Attributes:
        benchmarks: which NPB kernels to run.
        num_threads: application threads (= cores used; the paper pins 1:1).
        scale: workload scale factor (1.0 ≈ tens of thousands of accesses
            per thread per benchmark; iteration counts scale linearly).
        seed: master seed; everything else derives from it.
        os_runs: size of the OS-scheduler placement ensemble (paper: 100).
        mapped_runs: repetitions per SM/HM mapping, with per-run trace
            seeds, for the standard deviations of Table V.
        sm_sample_threshold / hm_period_cycles: detection knobs (see module
            docstring for the scaling rationale).
        cache_scale: multiplier on the Table II cache sizes.
        detection_windows: oracle windows per phase (None = whole-execution
            counting, the related-work semantics).
    """

    benchmarks: Tuple[str, ...] = PAPER_BENCHMARKS
    num_threads: int = 8
    scale: float = 1.0
    seed: int = 2012
    os_runs: int = 5
    mapped_runs: int = 3
    sm_sample_threshold: int = 8
    hm_period_cycles: int = 100_000
    cache_scale: float = 1.0
    detection_windows: "int | None" = None
    #: OS-noise preemption rate for performance runs (0 = quiet machine).
    #: Nonzero values reproduce Table V's run-to-run variance physically
    #: (preemptions + TLB flushes) instead of only via trace seeds.
    noise_rate: float = 0.0

    def __post_init__(self) -> None:
        check_positive("num_threads", self.num_threads)
        check_positive("scale", self.scale)
        check_positive("os_runs", self.os_runs)
        check_positive("mapped_runs", self.mapped_runs)
        check_positive("sm_sample_threshold", self.sm_sample_threshold)
        check_positive("hm_period_cycles", self.hm_period_cycles)
        check_positive("cache_scale", self.cache_scale)
        if not 0.0 <= self.noise_rate <= 1.0:
            raise ValueError("noise_rate must be in [0, 1]")
        unknown = set(self.benchmarks) - set(PAPER_BENCHMARKS)
        if unknown:
            raise ValueError(f"unknown benchmarks: {sorted(unknown)}")

    def quick(self) -> "ExperimentConfig":
        """A cheap variant for tests/CI: small traces, tiny ensembles."""
        return ExperimentConfig(
            benchmarks=self.benchmarks,
            num_threads=self.num_threads,
            scale=min(self.scale, 0.25),
            seed=self.seed,
            os_runs=2,
            mapped_runs=1,
            sm_sample_threshold=4,
            hm_period_cycles=50_000,
            cache_scale=self.cache_scale,
            detection_windows=self.detection_windows,
        )
