"""Regeneration of the paper's tables as text.

Table I and II are configuration tables (rendered live from the objects
that embody them, so they cannot drift from the implementation); Tables
III-V are measurement tables filled from a suite run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.core.detection import DetectorConfig
from repro.core.overhead import (
    hm_scan_comparisons,
    overhead_report,
    sm_search_comparisons,
)
from repro.experiments.runner import BenchmarkResult
from repro.machine.topology import Topology
from repro.tlb.tlb import TLBConfig
from repro.util.render import format_table
from repro.util.stats import summarize


def table1(
    config: DetectorConfig | None = None,
    tlb: TLBConfig | None = None,
    num_cores: int = 8,
) -> str:
    """Table I: comparison of the SM and HM mechanisms."""
    config = config or DetectorConfig()
    tlb = tlb or TLBConfig()
    rows = [
        ["Example architecture", "SPARC, MIPS", "Intel (x86/x86-64)"],
        ["Trigger", "every n TLB misses", "every n cycles"],
        ["n (paper defaults)", "100", "10,000,000"],
        [
            "TLBs searched",
            "pairs with missing TLB",
            "all possible pairs",
        ],
        [
            "Complexity (set-assoc.)",
            "Θ(P)",
            "Θ(P²·S)",
        ],
        [
            "Comparisons/search (this config)",
            str(sm_search_comparisons(num_cores, tlb)),
            str(hm_scan_comparisons(num_cores, tlb)),
        ],
        ["Routine cost (cycles)", str(config.sm_routine_cycles), str(config.hm_routine_cycles)],
        ["Hardware modification", "No", "Yes (TLB-read instruction)"],
    ]
    return format_table(rows, header=["", "Software-managed", "Hardware-managed"])


def table2(topology: Topology | None = None) -> str:
    """Table II: configuration of the caches."""
    topology = topology or Topology()
    l1, l2 = topology.l1_config, topology.l2_config
    rows = [
        ["Size", f"{l1.size // 1024} KiB", f"{l2.size // 1024} KiB"],
        [
            "Number",
            f"{topology.num_cores} inst + {topology.num_cores} data",
            f"{topology.num_l2} (shared by {topology.cores_per_l2} cores)",
        ],
        ["Line size", f"{l1.line_size} bytes", f"{l2.line_size} bytes"],
        ["Associativity", f"{l1.ways} ways", f"{l2.ways} ways"],
        ["Latency", f"{l1.latency} cycles", f"{l2.latency} cycles"],
        [
            "Policy",
            "write-through" if not l1.write_back else "write-back",
            ("write-back" if l2.write_back else "write-through") + ", MESI",
        ],
    ]
    return format_table(rows, header=["Parameter", "L1 cache", "L2 cache"])


def table3_rows(results: Mapping[str, BenchmarkResult]) -> List[List[object]]:
    """Table III rows: per-benchmark SM statistics (percentages)."""
    rows = []
    for name in sorted(results):
        r = results[name]
        rep = overhead_report(r.detector_stats["SM"], r.detection_results["SM"])
        miss_pct, sampled_pct, overhead_pct = rep.as_row()
        rows.append([
            name.upper(),
            f"{miss_pct:.3f}%",
            f"{sampled_pct:.3f}%",
            f"{overhead_pct:.3f}%",
        ])
    return rows


def table3(results: Mapping[str, BenchmarkResult]) -> str:
    """Table III: statistics for the software-managed TLB."""
    return format_table(
        table3_rows(results),
        header=["App.", "TLB miss rate", "Misses searched", "Total overhead"],
    )


#: SimResult attribute per Table IV block.
TABLE4_METRICS = (
    ("Execution time (s)", "execution_seconds", 1.0),
    ("Invalidations / s", "invalidations_per_second", 1.0),
    ("Snoop transactions / s", "snoops_per_second", 1.0),
    ("L2 misses / s", "l2_misses_per_second", 1.0),
)


def table4_data(results: Mapping[str, BenchmarkResult]) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{metric_label: {benchmark: {policy: mean}}}."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, attr, _ in TABLE4_METRICS:
        out[label] = {
            name: {
                policy: r.mean(policy, attr) for policy in ("OS", "SM", "HM")
            }
            for name, r in results.items()
        }
    return out


def table4(results: Mapping[str, BenchmarkResult]) -> str:
    """Table IV: absolute values per policy (means over the ensembles)."""
    benches = sorted(results)
    blocks = []
    for label, attr, _ in TABLE4_METRICS:
        rows = []
        for policy in ("OS", "SM", "HM"):
            row: List[object] = [policy]
            for name in benches:
                val = results[name].mean(policy, attr)
                row.append(f"{val:.3g}")
            rows.append(row)
        blocks.append(
            label + "\n" + format_table(rows, header=["Mapping"] + [b.upper() for b in benches])
        )
    return "\n\n".join(blocks)


def table5_data(results: Mapping[str, BenchmarkResult]) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Relative standard deviations per metric/benchmark/policy (fractions)."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, attr, _ in TABLE4_METRICS:
        out[label] = {}
        for name, r in results.items():
            out[label][name] = {}
            for policy in ("OS", "SM", "HM"):
                stats = summarize(r.runs[policy].metric(attr))
                out[label][name][policy] = stats.relative_std
    return out


def table5(results: Mapping[str, BenchmarkResult]) -> str:
    """Table V: standard deviations (as percentages of the mean)."""
    data = table5_data(results)
    benches = sorted(results)
    blocks = []
    for label, rows_by_bench in data.items():
        rows = []
        for policy in ("OS", "SM", "HM"):
            row: List[object] = [policy]
            for name in benches:
                row.append(f"{100 * rows_by_bench[name][policy]:.2f}%")
            rows.append(row)
        blocks.append(
            label + " (std dev)\n"
            + format_table(rows, header=["Mapping"] + [b.upper() for b in benches])
        )
    return "\n\n".join(blocks)
