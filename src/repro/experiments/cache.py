"""On-disk result cache for the experiment runner.

A full suite run is minutes of simulation whose inputs are *pure
configuration*: every random stream derives from ``(seed, benchmark,
run-label)``, never from wall-clock or execution order, so a
``BenchmarkResult`` is a deterministic function of
``(ExperimentConfig, Topology, benchmark name)``.  That makes the suite
memoizable: hash the canonicalized configuration, pickle the result
under that key, and a re-run (or a figure bench re-invoked with the
same scale) costs one file read per benchmark.

Keys embed :data:`CACHE_SCHEMA`, which must be bumped whenever the
*meaning* of a cached payload changes (new SimResult fields, protocol
fixes, counter semantics) so stale pickles are never resurrected.
Reads are tolerant: a missing, truncated, or unpicklable entry is a
miss, never an error — the cache can be deleted at any time.  Corrupt
entries are additionally *quarantined*: the damaged file is moved to
``<root>/quarantine/`` (evidence for a post-mortem) instead of being
silently overwritten in place, and ``ResultCache.quarantined`` counts
how many times that happened.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

import numpy as np

#: Bump when cached payloads become semantically incompatible (e.g. a
#: SimResult field changes meaning).  Part of every key.
CACHE_SCHEMA = 1


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure for hashing.

    Dataclasses become ``{"__type__": name, **fields}`` (recursively), so
    two configs differing in any field — or in *class* — hash apart.
    Containers canonicalize element-wise; anything else that ``json``
    can't serialize falls back to ``repr``, which is stable for the
    enum/str/int knobs used in configs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        # Arrays hash by exact contents: shape + dtype + a digest of the
        # raw bytes (C-order), so equal-valued arrays key together and a
        # single-bit change keys apart.  Used by the mapping service to
        # key canonical communication matrices.
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": [list(data.shape), str(data.dtype)],
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
        }
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_key(*parts: Any) -> str:
    """Deterministic hex key for a tuple of configuration objects."""
    payload = json.dumps(
        [CACHE_SCHEMA, [_canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Pickle-per-key cache directory with atomic writes.

    Layout: ``<root>/<key>.pkl``, one file per (config, topology,
    benchmark) triple.  Writes go through a temp file + :func:`os.replace`
    so concurrent workers (the runner's process pool) never observe a
    half-written entry — the worst race is two workers computing the same
    result and one replace winning, which is harmless.

    With ``max_bytes`` set, the directory is additionally an LRU with a
    byte budget: every hit refreshes the entry's mtime, and every write
    evicts least-recently-used ``.pkl`` files until the directory fits —
    so a long spec sweep cannot grow the on-disk cache unboundedly.  The
    budget is best-effort (the just-written entry always survives, even
    alone over budget) and eviction races between concurrent workers are
    harmless: losing an entry is just a future miss.
    """

    #: Subdirectory collecting corrupt entries moved out of the way.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: "str | Path", max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: LRU byte budget for the ``.pkl`` entries (None = unbounded).
        self.max_bytes = max_bytes
        #: Corrupt entries moved to the quarantine directory so far.
        self.quarantined = 0
        #: Entries evicted to stay under ``max_bytes`` so far.
        self.evicted = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Cached value for ``key``, or None on any kind of miss.

        A *corrupt* entry (present on disk but unreadable: truncated,
        bit-flipped, pickled against a vanished class layout) is moved
        to the quarantine directory rather than crashing the runner or
        lingering to fail again — the next ``put`` writes a fresh file.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
            if self.max_bytes is not None:
                # LRU recency: a hit makes the entry newest, so eviction
                # (sorted by mtime) reaps the cold tail first.
                try:
                    os.utime(path)
                except OSError:
                    pass  # a concurrent eviction already removed it
            return value
        except FileNotFoundError:
            return None  # plain miss: nothing was ever stored
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            # The file exists but cannot be trusted; quarantine it.
            # (IndexError: pickle's frame decoder raises it on some
            # truncations instead of UnpicklingError.)
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Best-effort move of a damaged entry into the quarantine dir."""
        qdir = self.root / self.QUARANTINE_DIR
        try:
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
        except OSError:
            # Quarantining is bookkeeping; never let it fail a read.
            # (A concurrent worker may already have moved the file.)
            pass

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        from repro.faults.injector import get_injector
        from repro.faults.plan import SITE_CACHE_PUT

        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # Chaos site: a scheduled `corrupt` event damages the serialized
        # bytes before they reach disk, exercising the quarantine path.
        data = get_injector().corrupt_bytes(SITE_CACHE_PUT, data)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._enforce_budget(keep=self._path(key))

    def _enforce_budget(self, keep: Path) -> None:
        """Evict oldest-mtime entries until the directory fits ``max_bytes``.

        ``keep`` (the entry just written) is never evicted — the budget
        bounds *growth*, it must not turn the current put into a no-op.
        Quarantined files are outside the budget: they are evidence, not
        cache, and are bounded by the corruption count, not the sweep.
        """
        entries = []
        total = 0
        for path in self.root.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue  # raced with another worker's eviction
            total += st.st_size
            if path != keep:
                entries.append((st.st_mtime, path, st.st_size))
        entries.sort()
        assert self.max_bytes is not None
        for _, path, size in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evicted += 1

    def total_bytes(self) -> int:
        """Bytes currently held by ``.pkl`` entries (quarantine excluded)."""
        return sum(p.stat().st_size for p in self.root.glob("*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
