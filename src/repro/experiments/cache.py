"""On-disk result cache for the experiment runner.

A full suite run is minutes of simulation whose inputs are *pure
configuration*: every random stream derives from ``(seed, benchmark,
run-label)``, never from wall-clock or execution order, so a
``BenchmarkResult`` is a deterministic function of
``(ExperimentConfig, Topology, benchmark name)``.  That makes the suite
memoizable: hash the canonicalized configuration, pickle the result
under that key, and a re-run (or a figure bench re-invoked with the
same scale) costs one file read per benchmark.

Keys embed :data:`CACHE_SCHEMA`, which must be bumped whenever the
*meaning* of a cached payload changes (new SimResult fields, protocol
fixes, counter semantics) so stale pickles are never resurrected.
Reads are tolerant: a missing, truncated, or unpicklable entry is a
miss, never an error — the cache can be deleted at any time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

import numpy as np

#: Bump when cached payloads become semantically incompatible (e.g. a
#: SimResult field changes meaning).  Part of every key.
CACHE_SCHEMA = 1


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure for hashing.

    Dataclasses become ``{"__type__": name, **fields}`` (recursively), so
    two configs differing in any field — or in *class* — hash apart.
    Containers canonicalize element-wise; anything else that ``json``
    can't serialize falls back to ``repr``, which is stable for the
    enum/str/int knobs used in configs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        # Arrays hash by exact contents: shape + dtype + a digest of the
        # raw bytes (C-order), so equal-valued arrays key together and a
        # single-bit change keys apart.  Used by the mapping service to
        # key canonical communication matrices.
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": [list(data.shape), str(data.dtype)],
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
        }
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_key(*parts: Any) -> str:
    """Deterministic hex key for a tuple of configuration objects."""
    payload = json.dumps(
        [CACHE_SCHEMA, [_canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Pickle-per-key cache directory with atomic writes.

    Layout: ``<root>/<key>.pkl``, one file per (config, topology,
    benchmark) triple.  Writes go through a temp file + :func:`os.replace`
    so concurrent workers (the runner's process pool) never observe a
    half-written entry — the worst race is two workers computing the same
    result and one replace winning, which is harmless.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Cached value for ``key``, or None on any kind of miss."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Missing, truncated, or pickled against an old class layout:
            # all are plain misses; the entry will be overwritten.
            return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
