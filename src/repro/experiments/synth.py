"""Seed-stable scenario synthesizer + metamorphic checkers.

Complements the declarative specs (:mod:`repro.experiments.specs`): where
a spec enumerates a fixed grid, the synthesizer *generates* bounded
random workload configurations — NPB kernels and synthetic patterns,
small randomized topologies with capacity-pressured caches, detector
knobs, noise rates — deterministically from ``(seed, index)``, so a CI
shard and a developer box draw byte-identical scenarios.

On top of it, three metamorphic invariants of the paper's protocol
become executable checks (each used by
``tests/experiments/test_metamorphic.py`` with a non-vacuity twin that
proves a deliberately broken transform fails):

* **Thread-label permutation** (:func:`check_permutation_invariance`) —
  the oracle communication matrix relabels exactly and its canonical
  form is byte-identical; the mapping pulled back from the permuted
  detection is cost-equivalent on the base matrix; mapped execution
  cycles stay within a measured engine band.
* **Noise stability** (:func:`check_noise_stability`) — OS noise during
  detection must not send the mapper somewhere materially worse: the
  noisy-detection mapping's cost *on the clean matrix* stays within
  tolerance of the clean mapping's cost.
* **Reuse-distance oracle** (:func:`reuse_distance_bounds` /
  :func:`check_reuse_distance`) — an analytical cache model in the
  style of Barai et al. brackets the simulated L2 miss counter: distinct
  lines per L2 domain is a sound lower bound (every first touch of a
  line in a domain is a counted miss), and a per-set LRU replay of the
  round-robin quantum interleaving, widened by a coherence term, bounds
  it from above.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.commmatrix import CommunicationMatrix
from repro.core.detection import DetectorConfig
from repro.core.hm_detector import HardwareManagedDetector
from repro.core.oracle import oracle_matrix
from repro.core.sm_detector import SoftwareManagedDetector
from repro.experiments.config import PAPER_BENCHMARKS
from repro.machine.simulator import NoiseConfig, SimConfig, SimResult, Simulator
from repro.machine.system import System, SystemConfig
from repro.machine.topology import Topology
from repro.mapping.hierarchical import hierarchical_mapping
from repro.mapping.quality import normalized_cost
from repro.mem.cache import CacheConfig
from repro.service.canonical import canonical_form
from repro.tlb.mmu import TLBManagement
from repro.util.rng import as_rng, derive_seed
from repro.util.validation import ValidationError
from repro.workloads.base import Workload
from repro.workloads.npb import make_npb_workload
from repro.workloads.permuted import PermutedWorkload, check_permutation
from repro.workloads.synthetic import (
    AllToAllWorkload,
    MasterWorkerWorkload,
    NearestNeighborWorkload,
    PipelineWorkload,
)

#: Topology shapes per thread count: (cores_per_l2, l2_per_chip, chips)
#: with exactly num_threads cores, so identity pinning is always valid.
TOPOLOGY_SHAPES: Dict[int, Tuple[Tuple[int, int, int], ...]] = {
    4: ((2, 1, 2), (2, 2, 1)),
    8: ((2, 2, 2), (4, 1, 2), (2, 4, 1)),
}

#: Synthetic workload families; "npb" additionally draws a kernel name.
SYNTHETIC_FAMILIES = (
    "nearest_neighbor", "pipeline", "master_worker", "all_to_all",
)
FAMILIES = ("npb",) + SYNTHETIC_FAMILIES


@dataclass(frozen=True)
class SynthBounds:
    """Closed bounds every synthesized scenario must respect."""

    threads: Tuple[int, ...] = (4, 8)
    scale_min: float = 0.05
    scale_max: float = 0.3
    #: Small L2s so the reuse-distance oracle sees capacity pressure.
    l2_kib: Tuple[int, ...] = (8, 16, 32)
    sm_threshold_max: int = 8
    hm_period_min: int = 20_000
    hm_period_max: int = 200_000
    noise_rate_max: float = 0.05
    families: Tuple[str, ...] = FAMILIES


@dataclass(frozen=True)
class Scenario:
    """One bounded random workload configuration (pure data, picklable)."""

    name: str
    family: str
    kernel: str          # NPB kernel for family == "npb", else ""
    num_threads: int
    scale: float
    seed: int
    cores_per_l2: int
    l2_per_chip: int
    chips: int
    l2_kib: int
    sm_sample_threshold: int
    hm_period_cycles: int
    noise_rate: float

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValidationError(f"unknown scenario family {self.family!r}")
        if self.family == "npb" and self.kernel not in PAPER_BENCHMARKS:
            raise ValidationError(f"unknown NPB kernel {self.kernel!r}")
        cores = self.cores_per_l2 * self.l2_per_chip * self.chips
        if cores != self.num_threads:
            raise ValidationError(
                f"scenario topology has {cores} cores for "
                f"{self.num_threads} threads")


def scenario_bytes(scenario: Scenario) -> bytes:
    """Canonical byte encoding (the seed-stability property's substrate)."""
    return json.dumps(
        dataclasses.asdict(scenario), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class ScenarioSynthesizer:
    """Draws :class:`Scenario` s deterministically from ``(seed, index)``.

    Every index is an independent derived stream — ``scenario(7)`` is
    the same bytes whether or not 0..6 were ever drawn, which is what
    lets a sharded sweep partition indices across machines.
    """

    def __init__(self, seed: int = 2012, bounds: Optional[SynthBounds] = None):
        self.seed = int(seed)
        self.bounds = bounds or SynthBounds()

    def scenario(self, index: int) -> Scenario:
        """Draw scenario ``index`` — a pure function of ``(seed, index)``."""
        b = self.bounds
        rng = as_rng(derive_seed(self.seed, "scenario", int(index)))
        family = str(rng.choice(list(b.families)))
        kernel = str(rng.choice(list(PAPER_BENCHMARKS))) if family == "npb" else ""
        threads = int(rng.choice(list(b.threads)))
        shapes = TOPOLOGY_SHAPES[threads]
        shape = shapes[int(rng.integers(len(shapes)))]
        scale = round(float(rng.uniform(b.scale_min, b.scale_max)), 3)
        label = f"{family}-{kernel}" if kernel else family
        return Scenario(
            name=f"scn-{index:04d}-{label}",
            family=family,
            kernel=kernel,
            num_threads=threads,
            scale=scale,
            seed=int(derive_seed(self.seed, "scenario-seed", int(index))),
            cores_per_l2=shape[0],
            l2_per_chip=shape[1],
            chips=shape[2],
            l2_kib=int(rng.choice(list(b.l2_kib))),
            sm_sample_threshold=int(rng.integers(1, b.sm_threshold_max + 1)),
            hm_period_cycles=int(rng.integers(b.hm_period_min, b.hm_period_max + 1)),
            noise_rate=round(float(rng.uniform(0.0, b.noise_rate_max)), 4),
        )

    def sample(self, count: int, start: int = 0) -> List[Scenario]:
        """Scenarios for the contiguous index range ``[start, start+count)``."""
        return [self.scenario(i) for i in range(start, start + count)]


def build_topology(scenario: Scenario) -> Topology:
    """The scenario's machine: shape from the draw, deliberately small
    caches so capacity and coherence effects are visible at tiny scales."""
    l2_size = scenario.l2_kib * 1024
    return Topology(
        cores_per_l2=scenario.cores_per_l2,
        l2_per_chip=scenario.l2_per_chip,
        chips=scenario.chips,
        l1_config=CacheConfig(size=2 * 1024, ways=2, line_size=64,
                              latency=2, write_back=False, name="L1"),
        l2_config=CacheConfig(size=l2_size, ways=4, line_size=64,
                              latency=8, write_back=True, name="L2"),
    )


def build_workload(scenario: Scenario, run_label: object = "detect") -> Workload:
    """Fresh workload for the scenario with a per-run derived seed."""
    seed = derive_seed(scenario.seed, scenario.family, scenario.kernel, run_label)
    if scenario.family == "npb":
        return make_npb_workload(scenario.kernel,
                                 num_threads=scenario.num_threads,
                                 scale=scenario.scale, seed=seed)
    size = lambda base: max(1024, int(base * scenario.scale))  # noqa: E731
    n = scenario.num_threads
    if scenario.family == "nearest_neighbor":
        return NearestNeighborWorkload(n, seed=seed,
                                       slab_bytes=size(256 * 1024),
                                       halo_bytes=size(32 * 1024))
    if scenario.family == "pipeline":
        return PipelineWorkload(n, seed=seed, buffer_bytes=size(128 * 1024))
    if scenario.family == "master_worker":
        return MasterWorkerWorkload(n, seed=seed,
                                    task_bytes=size(64 * 1024),
                                    private_bytes=size(256 * 1024))
    if scenario.family == "all_to_all":
        return AllToAllWorkload(n, seed=seed, buffer_bytes=size(128 * 1024))
    raise ValidationError(f"unknown scenario family {scenario.family!r}")


def detector_config(scenario: Scenario) -> DetectorConfig:
    """The scenario's detector knobs as a :class:`DetectorConfig`."""
    return DetectorConfig(
        sm_sample_threshold=scenario.sm_sample_threshold,
        hm_period_cycles=scenario.hm_period_cycles,
    )


def detect_matrix(
    workload: Workload,
    topology: Topology,
    mechanism: str = "SM",
    config: Optional[DetectorConfig] = None,
    mapping: Optional[Sequence[int]] = None,
    noise: Optional[NoiseConfig] = None,
) -> Tuple[CommunicationMatrix, SimResult]:
    """One detection run; returns (detected matrix, detection SimResult)."""
    n = workload.num_threads
    cfg = config or DetectorConfig()
    if mechanism == "SM":
        det: object = SoftwareManagedDetector(n, cfg)
        mgmt = TLBManagement.SOFTWARE
    elif mechanism == "HM":
        det = HardwareManagedDetector(n, cfg)
        mgmt = TLBManagement.HARDWARE
    else:
        raise ValidationError(f"unknown mechanism {mechanism!r}")
    system = System(topology, SystemConfig(tlb_management=mgmt))
    sim_cfg = SimConfig(noise=noise) if noise is not None else SimConfig()
    result = Simulator(system, sim_cfg).run(workload, mapping=mapping,
                                            detectors=[det])
    return det.matrix, result


def mapping_profile(
    mapping: Sequence[int], topology: Topology
) -> Tuple[Tuple[int, ...], ...]:
    """Canonical L2-grouping of a placement: which threads share an L2.

    Two mappings with the same profile are equivalent to the paper's
    mechanism (communication locality only depends on which cache level
    a thread pair shares), so this is the right granularity for the
    noise-stability invariant.
    """
    groups: Dict[int, List[int]] = {}
    for t, core in enumerate(mapping):
        groups.setdefault(topology.l2_of_core(core), []).append(t)
    return tuple(sorted(tuple(sorted(g)) for g in groups.values()))


# -- metamorphic check 1: thread-label permutation ---------------------------

def check_permutation_invariance(
    workload: Workload,
    topology: Topology,
    perm: Sequence[int],
    config: Optional[DetectorConfig] = None,
    cost_tol: float = 0.05,
    cycle_tol: float = 0.25,
    relabel: bool = True,
) -> Dict[str, object]:
    """Assert the protocol is equivariant under thread relabeling.

    Thread labels are a runtime artifact; renaming the threads must not
    change what the protocol learns or where it puts them.  The claims
    split by where determinism actually lives:

    * **Exact, trace level** — the oracle communication matrix of the
      permuted workload is the exact relabeling ``M'[i, j] ==
      M[perm[i], perm[j]]``, and its canonical form is byte-identical.
      Workload generation is stateless per thread
      (:class:`~repro.workloads.base.SeedSequenceFactory` derives each
      stream independently), so these hold bit-for-bit.
    * **Banded, engine level** — the quantum round-robin scheduler
      visits threads in *index* order, so a relabeling reorders quanta
      within each round and shared-L2/coherence state legitimately
      drifts; measured drift on mapped execution cycles reaches ~15% at
      the synthesizer's capacity-pressured scales.  What must survive
      is the protocol's *outcome*: the mapping derived from the
      permuted detection, pulled back to base labels, stays within
      ``cost_tol`` of the base mapping's :func:`normalized_cost` on the
      base matrix (absolute, on the [0, 1] locality scale — raw costs
      can be single-digit for sparse detected matrices, where relative
      tolerance is meaningless), and the composed placement's execution
      cycles stay within ``cycle_tol``.

    ``relabel=False`` is the non-vacuity arm: it compares the permuted
    oracle against the *unrelabeled* base matrix — the deliberately
    broken transform — which must raise on any structured workload
    whose matrix is not symmetric under ``perm``.
    """
    n = workload.num_threads
    p = check_permutation(perm, n)
    permuted = PermutedWorkload(workload, p)

    # (a) Oracle (trace-level) matrix relabels exactly, mapping-free.
    base_oracle = oracle_matrix(workload).matrix
    perm_oracle = oracle_matrix(permuted).matrix
    expected = base_oracle[np.ix_(p, p)] if relabel else base_oracle
    if not np.array_equal(perm_oracle, expected):
        raise AssertionError(
            "oracle matrix is not the exact relabeling"
            if relabel else
            "permuted oracle matrix differs from the unrelabeled base "
            "(broken transform detected, as it must be)")

    # (b) Canonical form is fixed (the service cache's key invariant).
    canon_base, _ = canonical_form(base_oracle)
    canon_perm, _ = canonical_form(perm_oracle)
    if canon_base.tobytes() != canon_perm.tobytes():
        raise AssertionError("canonical form changed under relabeling")

    # (c) Protocol outcome: detect on the permuted workload, map, pull
    # the placement back to base labels — it must be as good a mapping
    # of the *base* matrix as the base run's own.
    base_matrix, _ = detect_matrix(workload, topology, "SM", config)
    perm_matrix, _ = detect_matrix(permuted, topology, "SM", config,
                                   mapping=[p[i] for i in range(n)])
    mapping = hierarchical_mapping(base_matrix, topology)
    perm_mapping = hierarchical_mapping(perm_matrix, topology)
    inv = [0] * n
    for i, s in enumerate(p):
        inv[s] = i
    pullback = [perm_mapping[inv[j]] for j in range(n)]
    base_cost = normalized_cost(base_matrix, mapping, topology)
    pull_cost = normalized_cost(base_matrix, pullback, topology)
    if pull_cost > base_cost + cost_tol:
        raise AssertionError(
            f"pulled-back mapping scores {pull_cost:.3f} normalized cost on "
            f"the base matrix vs {base_cost:.3f} (tol +{cost_tol})")

    # (d) Mapped cycle counts under the composed placement stay banded.
    composed = [mapping[p[i]] for i in range(n)]
    base_run = _performance_run(workload, topology, mapping)
    perm_run = _performance_run(permuted, topology, composed)
    a, b = base_run.execution_cycles, perm_run.execution_cycles
    if abs(a - b) > cycle_tol * max(a, b):
        raise AssertionError(
            f"mapped execution cycles moved {abs(a - b) / max(a, b):.1%} "
            f"under relabeling ({a} -> {b}, tol {cycle_tol:.0%})")
    return {"mapping": mapping, "pullback": pullback, "composed": composed,
            "canonical": canon_base, "base_cost": base_cost,
            "pull_cost": pull_cost}


def _performance_run(
    workload: Workload, topology: Topology, mapping: Sequence[int]
) -> SimResult:
    system = System(topology, SystemConfig(tlb_management=TLBManagement.HARDWARE))
    return Simulator(system).run(workload, mapping=mapping)


# -- metamorphic check 2: noise stability ------------------------------------

def check_noise_stability(
    workload: Workload,
    topology: Topology,
    noise_rate: float = 0.02,
    noise_seed: int = 0,
    config: Optional[DetectorConfig] = None,
    tol: float = 0.05,
    corrupt: bool = False,
) -> Dict[str, object]:
    """Assert OS noise during detection cannot materially worsen the map.

    The noisy-detection mapping is evaluated on the *clean* matrix (the
    application's true structure): its :func:`normalized_cost` must stay
    within ``tol`` (absolute, [0, 1] locality scale) of the clean
    mapping's.  ``corrupt=True`` is the non-vacuity arm — the "noise" is
    replaced by an adversarial relabel-by-rolling of the detected
    matrix, which rewires the heavy pairs and must blow the cost
    envelope on structured workloads.

    Defaults to dense sampling (``sm_sample_threshold=1``): the paper's
    stability claim presumes adequate sampling, and at the synthesizer's
    tiny scales a sparse detection is legitimately fragile under
    TLB-flushing preemptions (measured: up to +0.11 normalized cost at
    threshold 8, exactly +0.0 at threshold 1 for rates <= 0.02).
    """
    if config is None:
        config = DetectorConfig(sm_sample_threshold=1)
    clean_matrix, _ = detect_matrix(workload, topology, "SM", config)
    if corrupt:
        rolled = np.roll(np.roll(clean_matrix.matrix, 1, axis=0), 1, axis=1)
        noisy_matrix = CommunicationMatrix.from_array(rolled)
    else:
        noise = NoiseConfig(
            preemption_rate=noise_rate,
            seed=derive_seed(noise_seed, "noise-stability"),
            flush_tlb=True,
        )
        noisy_matrix, _ = detect_matrix(workload, topology, "SM", config,
                                        noise=noise)
    clean_map = hierarchical_mapping(clean_matrix, topology)
    noisy_map = hierarchical_mapping(noisy_matrix, topology)
    clean_cost = normalized_cost(clean_matrix, clean_map, topology)
    noisy_cost = normalized_cost(clean_matrix, noisy_map, topology)
    if noisy_cost > clean_cost + tol:
        raise AssertionError(
            f"noisy-detection mapping scores {noisy_cost:.3f} normalized "
            f"cost on the clean matrix vs {clean_cost:.3f} clean "
            f"(tol +{tol})")
    return {
        "clean_profile": mapping_profile(clean_map, topology),
        "noisy_profile": mapping_profile(noisy_map, topology),
        "clean_cost": clean_cost,
        "noisy_cost": noisy_cost,
    }


# -- metamorphic check 3: reuse-distance oracle ------------------------------

@dataclass(frozen=True)
class ReuseBounds:
    """Analytical L2 miss-count band for one (workload, topology, mapping)."""

    #: Distinct lines summed over L2 domains — a sound lower bound
    #: (every first touch of a line in a domain is a counted L2 miss).
    cold_misses: int
    #: Per-set LRU replay misses over the unfiltered per-domain streams.
    model_misses: int
    #: Number of distinct L2 domains the mapping uses.
    domains: int

    def upper(self, invalidations: int, alpha: float, beta: float) -> float:
        """The band's ceiling: model widened by a coherence term.

        ``alpha`` absorbs what the coarse model cannot see (L1 filtering
        means real L2 LRU state is staler than the unfiltered replay's);
        ``beta * invalidations`` covers coherence-induced refetches,
        which the single-domain replay has no notion of.
        """
        return alpha * self.model_misses + beta * invalidations


def reuse_distance_bounds(
    workload: Workload,
    topology: Topology,
    mapping: Optional[Sequence[int]] = None,
    quantum: int = 256,
) -> ReuseBounds:
    """Replay the simulator's round-robin interleaving through an
    analytical per-set LRU model of each L2 domain.

    The scalar engine schedules threads in index order, ``quantum``
    accesses per round, with phases as barriers; that order is
    reconstructed here exactly, so the model sees each L2 the same
    merged line stream the simulated cache saw (modulo L1 filtering,
    which only *removes* accesses — see :meth:`ReuseBounds.upper`).
    """
    n = workload.num_threads
    mapping = list(mapping) if mapping is not None else list(range(n))
    l2 = topology.l2_config
    line_shift = l2.line_size.bit_length() - 1
    num_sets = l2.num_sets
    ways = l2.ways
    domain_of = [topology.l2_of_core(c) for c in mapping]
    # domain -> per-set LRU state (dict preserves insertion order; first
    # key is the LRU way) and the distinct-line set, both persistent
    # across phases exactly like the simulated caches.
    lru: Dict[int, List[dict]] = {}
    seen: Dict[int, set] = {}
    cold = 0
    model = 0
    for phase in workload.phases():
        lines = [np.asarray(s.addrs) >> line_shift for s in phase.streams]
        lengths = [len(x) for x in lines]
        chunks: Dict[int, List[np.ndarray]] = {}
        for start in range(0, max(lengths), quantum):
            for t in range(n):
                if start < lengths[t]:
                    chunks.setdefault(domain_of[t], []).append(
                        lines[t][start:start + quantum])
        for dom, parts in chunks.items():
            stream = np.concatenate(parts)
            state = lru.setdefault(dom, [dict() for _ in range(num_sets)])
            dom_seen = seen.setdefault(dom, set())
            for line in stream.tolist():
                if line not in dom_seen:
                    dom_seen.add(line)
                    cold += 1
                s = state[line % num_sets]
                if line in s:
                    del s[line]  # re-insert below: move to MRU
                else:
                    model += 1
                    if len(s) >= ways:
                        del s[next(iter(s))]  # evict LRU
                s[line] = None
    return ReuseBounds(cold_misses=cold, model_misses=model,
                       domains=len(set(domain_of)))


def check_reuse_distance(
    result: SimResult,
    bounds: ReuseBounds,
    alpha: float = 1.6,
    beta: float = 4.0,
) -> Dict[str, float]:
    """Assert the simulated L2 miss counter sits inside the oracle band."""
    lo = bounds.cold_misses
    hi = bounds.upper(result.invalidations, alpha, beta)
    if not lo <= result.l2_misses <= hi:
        raise AssertionError(
            f"l2_misses={result.l2_misses} outside the reuse-distance band "
            f"[{lo}, {hi:.0f}] (model={bounds.model_misses}, "
            f"invalidations={result.invalidations})")
    return {"lo": float(lo), "hi": float(hi),
            "l2_misses": float(result.l2_misses)}
