"""Full reproduction report: paper values vs. measured, per experiment.

``generate_report(results)`` renders the Markdown that EXPERIMENTS.md is
built from — every table and figure of the paper with the published value
next to the measured one and a shape verdict.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.accuracy import pattern_class_of, pearson_similarity
from repro.experiments import figures, paper_values, tables
from repro.experiments.runner import BenchmarkResult


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def headline_comparison(results: Mapping[str, BenchmarkResult]) -> Dict[str, Dict[str, float]]:
    """Measured best-case reductions vs. the paper's headline claims.

    Reductions are computed as ``1 − best(SM, HM)/OS`` on ensemble means,
    per benchmark; the returned dict maps each headline to the paper value
    and our measured value for the same benchmark.
    """
    metric_of = {
        "best_execution_improvement": "execution_seconds",
        "best_l2_miss_reduction": "l2_misses",
        "best_invalidation_reduction": "invalidations",
        "best_snoop_reduction": "snoop_transactions",
    }
    out: Dict[str, Dict[str, float]] = {}
    for key, attr in metric_of.items():
        bench, paper_val = paper_values.HEADLINES[key]
        if bench not in results:
            continue
        r = results[bench]
        best = min(
            r.normalized_mean("SM", attr), r.normalized_mean("HM", attr)
        )
        out[key] = {
            "benchmark": bench,
            "paper": paper_val,
            "measured": 1.0 - best,
        }
    return out


def detection_accuracy_section(results: Mapping[str, BenchmarkResult]) -> str:
    """Figures 4/5 as quantitative accuracy: Pearson vs. the oracle."""
    lines = [
        "| benchmark | pattern (oracle) | SM r | HM r | SM >= HM? |",
        "|---|---|---|---|---|",
    ]
    for name in sorted(results):
        r = results[name]
        sm_r = pearson_similarity(r.detected["SM"], r.detected["oracle"])
        hm_r = pearson_similarity(r.detected["HM"], r.detected["oracle"])
        lines.append(
            f"| {name.upper()} | {pattern_class_of(r.detected['oracle'])} "
            f"| {sm_r:.2f} | {hm_r:.2f} | {'yes' if sm_r >= hm_r - 0.05 else 'no'} |"
        )
    return "\n".join(lines)


def normalized_comparison_section(
    results: Mapping[str, BenchmarkResult], figure: int
) -> str:
    """One of Figures 6-9 as a paper-vs-measured table of normalized values."""
    attr, title = figures.FIGURE_METRICS[figure]
    paper_metric = {
        6: paper_values.TABLE4_EXECUTION_TIME,
        7: paper_values.TABLE4_INVALIDATIONS,
        8: paper_values.TABLE4_SNOOPS,
        9: paper_values.TABLE4_L2_MISSES,
    }[figure]
    paper_norm = paper_values.normalized_table4(paper_metric)
    lines = [
        f"**Figure {figure}: {title} (normalized to OS; lower is better)**",
        "",
        "| benchmark | paper SM | ours SM | paper HM | ours HM |",
        "|---|---|---|---|---|",
    ]
    for name in sorted(results):
        r = results[name]
        lines.append(
            f"| {name.upper()} "
            f"| {paper_norm[name]['SM']:.3f} | {r.normalized_mean('SM', attr):.3f} "
            f"| {paper_norm[name]['HM']:.3f} | {r.normalized_mean('HM', attr):.3f} |"
        )
    return "\n".join(lines)


def generate_report(results: Mapping[str, BenchmarkResult]) -> str:
    """Assemble the full Markdown reproduction report."""
    parts = [
        "# Reproduction report",
        "",
        "Paper: *Using the Translation Lookaside Buffer to Map Threads in "
        "Parallel Applications Based on Shared Memory* (Cruz, Diener, "
        "Navaux — IPDPS 2012).",
        "",
        "## Headline claims",
        "",
        "| claim | benchmark | paper | measured |",
        "|---|---|---|---|",
    ]
    for key, row in headline_comparison(results).items():
        parts.append(
            f"| {key.replace('_', ' ')} | {row['benchmark'].upper()} "
            f"| {_pct(row['paper'])} | {_pct(row['measured'])} |"
        )
    parts += [
        "",
        "## Detection accuracy (Figures 4 and 5)",
        "",
        detection_accuracy_section(results),
    ]
    for figure in (6, 7, 8, 9):
        parts += ["", normalized_comparison_section(results, figure)]
    parts += [
        "",
        "## Table III (software-managed TLB statistics)",
        "",
        "```",
        tables.table3(results),
        "```",
        "",
        "## Table IV (absolute values)",
        "",
        "```",
        tables.table4(results),
        "```",
        "",
        "## Table V (standard deviations)",
        "",
        "```",
        tables.table5(results),
        "```",
    ]
    return "\n".join(parts)
