"""Experiment harness: regenerate every table and figure of the paper.

The :class:`ExperimentRunner` executes the paper's full protocol for each
benchmark — detect communication with SM and HM under identity pinning,
derive mappings with the hierarchical Edmonds mapper, then run a
performance ensemble (OS-scheduler placements vs. the SM/HM mappings) —
and the ``figures`` / ``tables`` modules format the results the way the
paper reports them.  ``paper_values`` holds the published numbers for
side-by-side comparison; ``ablations`` sweeps the design choices
DESIGN.md §5 calls out.
"""

from repro.experiments.cache import ResultCache, config_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BenchmarkResult, ExperimentRunner, MappingRuns
from repro.experiments import figures, tables, paper_values, ablations, report

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "BenchmarkResult",
    "MappingRuns",
    "ResultCache",
    "config_key",
    "figures",
    "tables",
    "paper_values",
    "ablations",
    "report",
]
