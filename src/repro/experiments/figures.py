"""Regeneration of the paper's figures as text.

* Figures 4/5 — communication-pattern heatmaps per benchmark (SM and HM).
* Figures 6-9 — execution time / invalidations / snoop transactions / L2
  misses, normalized to the OS scheduler, as grouped bar charts.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.experiments.runner import BenchmarkResult
from repro.util.render import bar_chart

#: Metric attribute on SimResult per figure number.
FIGURE_METRICS = {
    6: ("execution_seconds", "Execution time"),
    7: ("invalidations", "Invalidations"),
    8: ("snoop_transactions", "Snoop transactions"),
    9: ("l2_misses", "L2 cache misses"),
}


def communication_heatmaps(
    results: Mapping[str, BenchmarkResult], mechanism: str
) -> Dict[str, str]:
    """Figure 4 (mechanism="SM") / Figure 5 (mechanism="HM"): one ASCII
    heatmap per benchmark."""
    if mechanism not in ("SM", "HM", "oracle"):
        raise ValueError(f"mechanism must be SM, HM or oracle, got {mechanism!r}")
    return {
        name: r.detected[mechanism].heatmap(f"{name.upper()} ({mechanism})")
        for name, r in results.items()
    }


def fig4(results: Mapping[str, BenchmarkResult]) -> Dict[str, str]:
    """Figure 4: SM-detected communication patterns."""
    return communication_heatmaps(results, "SM")


def fig5(results: Mapping[str, BenchmarkResult]) -> Dict[str, str]:
    """Figure 5: HM-detected communication patterns."""
    return communication_heatmaps(results, "HM")


def normalized_metric(
    results: Mapping[str, BenchmarkResult], metric: str
) -> Dict[str, Dict[str, float]]:
    """{benchmark: {policy: mean(metric)/mean(OS metric)}} for figures 6-9."""
    out: Dict[str, Dict[str, float]] = {}
    for name, r in results.items():
        out[name] = {
            policy: r.normalized_mean(policy, metric)
            for policy in ("OS", "SM", "HM")
        }
    return out


def figure_data(results: Mapping[str, BenchmarkResult], number: int) -> Dict[str, Dict[str, float]]:
    """Normalized data for figure ``number`` in {6, 7, 8, 9}."""
    if number not in FIGURE_METRICS:
        raise ValueError(f"no such figure: {number} (have {sorted(FIGURE_METRICS)})")
    metric, _title = FIGURE_METRICS[number]
    return normalized_metric(results, metric)


def render_figure(results: Mapping[str, BenchmarkResult], number: int) -> str:
    """Full text rendering of one of Figures 6-9."""
    metric, title = FIGURE_METRICS[number]
    data = normalized_metric(results, metric)
    blocks = [f"Figure {number}: {title} (normalized to OS)"]
    for name in sorted(data):
        row = data[name]
        blocks.append(bar_chart(
            {p: row[p] for p in ("OS", "SM", "HM")},
            title=name.upper(),
            reference=1.0,
        ))
    return "\n\n".join(blocks)


def heatmap_svgs(
    results: Mapping[str, BenchmarkResult], mechanism: str
) -> Dict[str, str]:
    """SVG heatmaps per benchmark (publication-grade Figures 4/5)."""
    from repro.util.svgfig import heatmap_svg

    if mechanism not in ("SM", "HM", "oracle"):
        raise ValueError(f"mechanism must be SM, HM or oracle, got {mechanism!r}")
    return {
        name: heatmap_svg(
            r.detected[mechanism].matrix,
            title=f"{name.upper()} ({mechanism})",
        )
        for name, r in results.items()
    }


def figure_svg(results: Mapping[str, BenchmarkResult], number: int) -> str:
    """SVG grouped-bar rendering of one of Figures 6-9."""
    from repro.util.svgfig import grouped_bars_svg

    metric, title = FIGURE_METRICS[number]
    data = {
        name.upper(): normalized_metric(results, metric)[name]
        for name in sorted(results)
    }
    return grouped_bars_svg(
        data,
        title=f"Figure {number}: {title} (normalized to OS)",
        series_order=("OS", "SM", "HM"),
    )


def fig6(results: Mapping[str, BenchmarkResult]) -> str:
    """Figure 6: normalized execution time."""
    return render_figure(results, 6)


def fig7(results: Mapping[str, BenchmarkResult]) -> str:
    """Figure 7: normalized invalidations."""
    return render_figure(results, 7)


def fig8(results: Mapping[str, BenchmarkResult]) -> str:
    """Figure 8: normalized snoop transactions."""
    return render_figure(results, 8)


def fig9(results: Mapping[str, BenchmarkResult]) -> str:
    """Figure 9: normalized L2 cache misses."""
    return render_figure(results, 9)
