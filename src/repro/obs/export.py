"""Trace export: Chrome ``trace_event`` JSON and compact JSONL.

The Chrome format (loadable in Perfetto / ``chrome://tracing``) uses
"X" complete events for spans and "i" instant events, with timestamps
in microseconds.  We map one of the two span clocks onto the ``ts``
axis (``clock="cycles"`` for simulation traces — bit-exact — or
``clock="wall"`` for service traces) and keep the *other* clock plus
span/parent ids inside ``args`` so no information is lost.

Rendering is canonical JSON (sorted keys, no whitespace) so a trace
taken with the deterministic step clock is byte-identical across runs —
the property ``repro trace`` and ``make trace-smoke`` assert.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.obs.trace import Span

#: Known ``ph`` phases emitted by :func:`chrome_trace`.
_PHASES = {"X", "i", "M"}


def _event(span: Span, clock: str) -> Dict[str, Any]:
    if clock == "cycles":
        t0: Any = span.t0_cycles
        t1: Any = span.t1_cycles
        other = {"w0": span.t0_wall, "w1": span.t1_wall}
    else:
        t0 = span.t0_wall
        t1 = span.t1_wall
        other = {"c0": span.t0_cycles, "c1": span.t1_cycles}
    args: Dict[str, Any] = {"span_id": span.span_id, "parent_id": span.parent_id}
    args.update(other)
    args.update(span.args)
    event: Dict[str, Any] = {
        "name": span.name,
        "cat": span.cat or "repro",
        "pid": 1,
        "tid": 1,
        "ts": t0,
        "args": args,
    }
    if span.kind == "event":
        event["ph"] = "i"
        event["s"] = "t"
    else:
        event["ph"] = "X"
        event["dur"] = t1 - t0
    return event


def chrome_trace(
    spans: Sequence[Span],
    trace_id: str,
    clock: str = "cycles",
) -> Dict[str, Any]:
    """Chrome ``trace_event`` document for ``spans``.

    ``clock`` selects which span clock drives the ``ts`` axis:
    ``"cycles"`` (simulated time, deterministic), ``"wall"``, or
    ``"step"`` — the tracer's deterministic fallback counter, which
    lives on the wall track but must not be interpreted as seconds
    (latency attribution reports it unscaled).
    """
    if clock not in ("cycles", "wall", "step"):
        raise ValueError(
            f"clock must be 'cycles', 'wall' or 'step', got {clock!r}"
        )
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": f"repro:{trace_id}"},
        }
    ]
    events.extend(_event(span, clock) for span in spans)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "clock": clock},
    }


def render_chrome_json(doc: Dict[str, Any]) -> str:
    """Canonical (byte-stable) JSON text for a Chrome trace document."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def render_jsonl(spans: Sequence[Span], trace_id: str) -> str:
    """Compact JSONL: one ``{"trace": ..., ...span record}`` per line."""
    lines = []
    for span in spans:
        record = {"trace": trace_id}
        record.update(span.to_record())
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def validate_chrome_trace(doc: Any) -> int:
    """Schema-check a Chrome trace document; return its event count.

    Raises :class:`ValueError` on the first structural violation.  This
    is the check ``make trace-smoke`` and the determinism tests run on
    every export — deliberately strict about the fields Perfetto's
    legacy JSON importer requires.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where} has unknown phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} needs a non-empty string name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where} needs an int {field}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where} args must be an object")
        if ph == "M":
            continue
        ts = event.get("ts")
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            raise ValueError(f"{where} needs a numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)):
                raise ValueError(f"{where} (complete event) needs a numeric dur")
            if dur < 0:
                raise ValueError(f"{where} has negative duration {dur}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where} (instant event) needs scope s in t/p/g")
    return len(events)
