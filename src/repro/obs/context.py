"""Trace-context propagation primitives.

A :class:`TraceContext` is the small, serializable part of a trace that
crosses process boundaries: the trace id, the span to parent under, and
(optionally) a directory where the child should stream its spans as
JSONL.  It travels three ways, mirroring the fault layer's
``REPRO_FAULT_PLAN`` trick:

* **Environment** (:data:`TRACE_ENV_VAR`) — static context installed
  before a process pool is created; every child picks it up lazily via
  :func:`repro.obs.trace.get_tracer`.
* **Payload header** — a sentinel item prepended to a solve batch by the
  service batcher (see :mod:`repro.service.worker`), carrying a *fresh*
  parent span id per batch, which the environment cannot do.
* **HTTP header** (:data:`TRACE_HEADER`) — injected by the cluster
  router on every forward, carrying a fresh parent span id per request
  so shard request spans stitch under the router's ``forward`` span.

The JSON codec is strict on types so a corrupted environment variable
fails loudly at the first traced call, not with a silent mis-parented
trace.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Mapping, Optional

#: Environment variable carrying a JSON-encoded :class:`TraceContext`.
TRACE_ENV_VAR = "REPRO_TRACE_CONTEXT"

#: HTTP request header carrying a JSON-encoded :class:`TraceContext`.
#: The router injects it on every forward (parenting the shard's request
#: span under the router's ``forward`` span); the shard's HTTP layer
#: parses it strictly and rejects malformed values with a 400 rather
#: than silently mis-parenting a distributed trace.
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """The portable cross-process slice of a trace."""

    #: Trace identifier shared by parent and children.
    trace_id: str
    #: Span id in the parent process to parent child roots under
    #: (0 means "no parent").
    parent_span_id: int = 0
    #: Directory where a child process should stream spans as JSONL
    #: (``worker-<pid>.jsonl``); ``None`` disables child export.
    export_dir: Optional[str] = None

    def to_json(self) -> str:
        """Compact JSON form for the environment / payload header."""
        doc = {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}
        if self.export_dir is not None:
            doc["export_dir"] = self.export_dir
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TraceContext":
        """Parse and validate a context produced by :meth:`to_json`."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed trace context: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValueError("trace context must be a JSON object")
        trace_id = doc.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ValueError("trace context needs a non-empty string trace_id")
        parent = doc.get("parent_span_id", 0)
        if not isinstance(parent, int) or isinstance(parent, bool) or parent < 0:
            raise ValueError("trace context parent_span_id must be an int >= 0")
        export_dir = doc.get("export_dir")
        if export_dir is not None and not isinstance(export_dir, str):
            raise ValueError("trace context export_dir must be a string")
        return cls(trace_id=trace_id, parent_span_id=parent, export_dir=export_dir)

    def to_header(self) -> str:
        """Value for the :data:`TRACE_HEADER` HTTP request header.

        The compact JSON form is already a legal HTTP header value
        (printable ASCII, no CR/LF), so the wire encoding is the same
        codec the environment variable uses — one format, one parser.
        """
        return self.to_json()

    @classmethod
    def from_header(cls, value: str) -> "TraceContext":
        """Parse a :data:`TRACE_HEADER` value (strict, like the env path)."""
        return cls.from_json(value)


def context_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[TraceContext]:
    """The :class:`TraceContext` installed in ``environ``, if any."""
    env = os.environ if environ is None else environ
    raw = env.get(TRACE_ENV_VAR)
    if not raw:
        return None
    return TraceContext.from_json(raw)


def install_context(ctx: TraceContext) -> None:
    """Publish ``ctx`` to ``os.environ`` for future child processes."""
    os.environ[TRACE_ENV_VAR] = ctx.to_json()


def clear_context() -> None:
    """Remove any published trace context from ``os.environ``."""
    os.environ.pop(TRACE_ENV_VAR, None)
