"""Observability: deterministic tracing, metrics registry, profiling hooks.

The paper's whole argument is about *where time and traffic go* —
detector overhead (Table III), per-phase execution time, invalidations
and snoops (Figures 6-9) — so the reproduction carries first-class
instrumentation instead of ad-hoc counters:

* :mod:`repro.obs.trace` — nested spans with **dual clocks**: simulated
  cycle time (bit-exact, seed-stable) and an *injected* monotonic wall
  clock.  The module itself never reads wall time (RPL002/RPL007); with
  no clock injected it falls back to a deterministic step counter, which
  is what makes trace exports byte-identical across runs.
* :mod:`repro.obs.context` — trace-context propagation into process-pool
  children (environment variable + payload header, the same trick the
  fault layer uses for ``REPRO_FAULT_PLAN``).
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loads in
  Perfetto / ``chrome://tracing``) plus a compact JSONL stream, with a
  schema validator used by ``make trace-smoke``.
* :mod:`repro.obs.metrics` — the unified :class:`Counter` / ``Gauge`` /
  ``Histogram`` registry that the simulator, experiment runner, faults
  layer and mapping service all publish into.

Disabled tracing is a near-free no-op: every hook reaches the shared
:class:`~repro.obs.trace.NullTracer`, whose methods are constant-time
(the overhead guard in ``tests/obs/test_overhead.py`` bounds the cost
at <2% of an engine benchmark run).
"""

from repro.obs.context import TRACE_ENV_VAR, TraceContext
from repro.obs.export import (
    chrome_trace,
    render_chrome_json,
    render_jsonl,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    nearest_rank_index,
    reset_global_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate_tracing,
    deactivate_tracing,
    get_tracer,
    tracer_from_context,
    tracing,
)

__all__ = [
    "TRACE_ENV_VAR",
    "TraceContext",
    "chrome_trace",
    "render_chrome_json",
    "render_jsonl",
    "validate_chrome_trace",
    "CallbackGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "nearest_rank_index",
    "reset_global_registry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate_tracing",
    "deactivate_tracing",
    "get_tracer",
    "tracer_from_context",
    "tracing",
]
