"""Append-only performance-regression ledger (``BENCH_HISTORY.jsonl``).

Every bench writer appends its envelope here, giving the repo a
*memory* of its own performance: ``repro obs regress`` compares a fresh
``BENCH_*.json`` document against the last N ledger entries of the same
kind and flags deltas beyond per-metric tolerance bands, and
``make perf-gate`` runs that comparison in CI.

Design constraints, in order:

* **No wall clocks** — this module lives under ``obs/`` and honors the
  RPL007 contract, so entries carry a monotonically increasing ``seq``
  instead of a timestamp.  Sequencing is what regression windows need;
  wall-clock provenance belongs to git history.
* **Schema-checked envelopes** — an append validates the bench
  document's shared envelope (``schema``, ``kind``, ``host_cpus``,
  ``routers``, ``shards``) so a malformed writer fails its own bench
  run, not a later CI gate.
* **Scalars only** — nested dicts flatten to dotted keys; lists (per
  load-level rows, per-splice detail) are deliberately skipped.  The
  regression surface is the summary statistics a human would eyeball,
  not every row of raw data.
* **Direction-aware tolerance bands** — ``*_ms``/``*_pct`` metrics
  regress upward, ``*rps``/``*_rate``/``*speedup``/``*_wins`` metrics
  regress downward, and everything else (request counts, chaos
  counters, config echoes) is tracked but never gated.  The default
  band is deliberately wide (:data:`DEFAULT_TOLERANCE`): this runs on
  whatever noisy box CI lands on, and the gate exists to catch
  order-of-magnitude rot, not 5% jitter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Ledger entry schema version.
LEDGER_SCHEMA = 1

#: Bench envelope schema this ledger accepts (benchmarks/cluster_common.py).
BENCH_DOC_SCHEMA = 1

#: Entries of the candidate's kind used as the regression baseline.
DEFAULT_WINDOW = 5

#: Default relative tolerance band (0.5 == +-50%), chosen for a noisy
#: shared CI host; tighten per metric via the ``tolerances`` mapping.
DEFAULT_TOLERANCE = 0.5

#: Envelope keys excluded from the flattened metric set.
_ENVELOPE_KEYS = frozenset({"schema", "kind", "host_cpus", "routers", "shards"})

#: Leaf-name suffixes where a *higher* candidate value is a regression.
_LOWER_IS_BETTER = ("_ms", "_pct")

#: Leaf-name suffixes where a *lower* candidate value is a regression.
_HIGHER_IS_BETTER = ("rps", "_rate", "speedup", "_wins")


def validate_bench_doc(doc: Any) -> Dict[str, Any]:
    """Check the shared bench envelope; return the doc on success."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    schema = doc.get("schema")
    if schema != BENCH_DOC_SCHEMA or isinstance(schema, bool):
        raise ValueError(
            f"bench document schema must be {BENCH_DOC_SCHEMA}, got {schema!r}"
        )
    kind = doc.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError("bench document needs a non-empty string kind")
    cpus = doc.get("host_cpus")
    if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
        raise ValueError("bench document needs an int host_cpus >= 1")
    for field in ("routers", "shards"):
        value = doc.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"bench document needs an int {field} >= 0")
    return doc


def flatten_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves of ``doc`` as sorted dotted keys (envelope excluded).

    Bools and lists are skipped: bools are flags, and list-valued fields
    are per-row detail whose shape may legitimately change run to run.
    """
    out: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out[prefix] = value
        elif isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}", value[key])

    for key in sorted(doc):
        if key in _ENVELOPE_KEYS:
            continue
        walk(key, doc[key])
    return out


def metric_direction(key: str) -> Optional[str]:
    """``"lower"``/``"higher"`` = the better direction, ``None`` = ungated."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf.endswith(_LOWER_IS_BETTER):
        return "lower"
    if leaf.endswith(_HIGHER_IS_BETTER):
        return "higher"
    return None


def read_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse and validate every ledger entry in ``path`` (missing → [])."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: malformed ledger line: {exc}") from exc
        if not isinstance(entry, dict) or entry.get("schema") != LEDGER_SCHEMA:
            raise ValueError(f"{path}:{lineno}: not a schema-{LEDGER_SCHEMA} entry")
        if not isinstance(entry.get("seq"), int) or isinstance(entry["seq"], bool):
            raise ValueError(f"{path}:{lineno}: entry needs an int seq")
        if not isinstance(entry.get("kind"), str) or not entry["kind"]:
            raise ValueError(f"{path}:{lineno}: entry needs a string kind")
        if not isinstance(entry.get("metrics"), dict):
            raise ValueError(f"{path}:{lineno}: entry needs a metrics object")
        entries.append(entry)
    return entries


def append_entry(path: Union[str, Path], doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate ``doc`` and append its flattened entry to the ledger.

    Returns the appended entry.  ``seq`` continues from the last entry
    in the file (any kind), so the ledger orders all benches globally.
    """
    validate_bench_doc(doc)
    path = Path(path)
    history = read_history(path)
    seq = history[-1]["seq"] + 1 if history else 1
    entry = {
        "schema": LEDGER_SCHEMA,
        "seq": seq,
        "kind": doc["kind"],
        "host_cpus": doc["host_cpus"],
        "routers": doc["routers"],
        "shards": doc["shards"],
        "metrics": flatten_metrics(doc),
    }
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    with path.open("a") as handle:
        handle.write(line + "\n")
    return entry


def regress(
    history: List[Dict[str, Any]],
    candidate: Dict[str, Any],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    tolerances: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Compare a candidate bench doc against the ledger's recent window.

    The baseline for each metric is the mean over the last ``window``
    entries of the candidate's kind that carry that metric.  A metric
    regresses when it moves beyond its tolerance band in the *worse*
    direction; improvements never flag.  Returns a report dict with
    ``ok`` plus the per-metric evidence for every flagged regression.
    """
    validate_bench_doc(candidate)
    kind = candidate["kind"]
    baseline = [e for e in history if e["kind"] == kind][-max(1, window):]
    metrics = flatten_metrics(candidate)
    report: Dict[str, Any] = {
        "kind": kind,
        "window": window,
        "baseline_entries": len(baseline),
        "checked": 0,
        "regressions": [],
        "ok": True,
    }
    if not baseline:
        report["note"] = f"no ledger entries of kind {kind!r}; nothing to gate"
        return report
    bands = tolerances or {}
    for key in sorted(metrics):
        direction = metric_direction(key)
        if direction is None:
            continue
        values = [e["metrics"][key] for e in baseline if key in e["metrics"]]
        if not values:
            continue
        base = sum(values) / len(values)
        if base == 0:
            continue
        report["checked"] += 1
        band = bands.get(key, tolerance)
        delta = (metrics[key] - base) / abs(base)
        worse = delta > band if direction == "lower" else delta < -band
        if worse:
            report["regressions"].append(
                {
                    "metric": key,
                    "baseline": base,
                    "candidate": metrics[key],
                    "delta_pct": delta * 100.0,
                    "tolerance_pct": band * 100.0,
                    "better_direction": direction,
                }
            )
    report["ok"] = not report["regressions"]
    return report


def render_regress_report(report: Dict[str, Any]) -> str:
    """Human-readable text for one :func:`regress` report."""
    head = (
        f"perf-gate[{report['kind']}]: {report['checked']} metric(s) vs "
        f"{report['baseline_entries']} ledger entr"
        f"{'y' if report['baseline_entries'] == 1 else 'ies'}"
    )
    lines = [head]
    if "note" in report:
        lines.append(f"  note: {report['note']}")
    for reg in report["regressions"]:
        arrow = "rose" if reg["better_direction"] == "lower" else "fell"
        lines.append(
            f"  REGRESSION {reg['metric']}: {arrow} "
            f"{abs(reg['delta_pct']):.1f}% (baseline {reg['baseline']:.6g} -> "
            f"candidate {reg['candidate']:.6g}, band {reg['tolerance_pct']:.0f}%)"
        )
    lines.append(f"  result: {'ok' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
