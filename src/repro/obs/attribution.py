"""Per-request latency attribution over Chrome trace documents.

Takes a trace document — a standalone service trace or a stitched
cluster trace (:mod:`repro.obs.stitch`) — and decomposes each request's
end-to-end duration into per-stage *self time*: the part of a span's
duration not covered by its children, attributed to that span's stage
(:mod:`repro.obs.stages`).  Self time uses the *union* of child
intervals clipped to the parent, not their sum, so overlapping siblings
(the batcher's ``batch.run`` wrapper temporally contains the
``solve.batch`` dispatch it drives) are never double-subtracted.  The
invariant that makes the output trustworthy: for every request, the
stage milliseconds sum *exactly* to the request's measured duration —
there is no residual bucket that silently absorbs accounting errors,
only the honest ``other`` stage for spans outside the taxonomy.

Aggregation reports mean plus nearest-rank p50/p99 — each percentile is
one *actual* request's breakdown (the request at that rank by total
duration), so its stages also sum exactly to its total.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.obs.stages import OTHER_STAGE, REQUEST_ROOT_NAMES, STAGES, stage_of

#: Stage columns in reporting order: taxonomy order, then the residual.
REPORT_STAGES: Tuple[str, ...] = STAGES + (OTHER_STAGE,)


def _covered(parent_t0: float, parent_t1: float, kids: List[Dict[str, Any]]) -> float:
    """Length of the union of child intervals clipped to the parent."""
    intervals = []
    for kid in kids:
        lo = max(parent_t0, kid["t0"])
        hi = min(parent_t1, kid["t1"])
        if hi > lo:
            intervals.append((lo, hi))
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    return total + (cur_hi - cur_lo)


def _spans_of(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    spans = []
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span_id = args.get("span_id")
        if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id <= 0:
            continue
        t0 = float(event.get("ts", 0.0))
        spans.append(
            {
                "id": span_id,
                "parent": args.get("parent_id", 0),
                "name": event.get("name", ""),
                "t0": t0,
                "t1": t0 + float(event.get("dur", 0.0)),
            }
        )
    return spans


def attribute_requests(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One attribution record per request root found in ``doc``.

    A request root is a span named in
    :data:`repro.obs.stages.REQUEST_ROOT_NAMES` whose parent is not
    itself present in the document — the router's ``route`` span in a
    stitched trace (where shard ``request:/...`` spans hang under
    ``forward``), or the service request span in a standalone trace.
    Each record carries ``total`` and a ``stages`` dict whose values sum
    exactly to ``total``.
    """
    spans = _spans_of(doc)
    by_id = {span["id"]: span for span in spans}
    children: Dict[int, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span["parent"]
        if isinstance(parent, int) and parent in by_id:
            children.setdefault(parent, []).append(span)

    records = []
    for root in spans:
        if root["name"] not in REQUEST_ROOT_NAMES:
            continue
        if isinstance(root["parent"], int) and root["parent"] in by_id:
            continue
        stages: Dict[str, float] = {}
        stack = [root]
        while stack:
            span = stack.pop()
            kids = children.get(span["id"], [])
            self_time = (span["t1"] - span["t0"]) - _covered(
                span["t0"], span["t1"], kids
            )
            stage = stage_of(span["name"]) or OTHER_STAGE
            stages[stage] = stages.get(stage, 0.0) + self_time
            stack.extend(kids)
        records.append(
            {
                "span_id": root["id"],
                "name": root["name"],
                "total": root["t1"] - root["t0"],
                "stages": stages,
            }
        )
    records.sort(key=lambda r: (r["total"], r["span_id"]))
    return records


def _nearest_rank(records: List[Dict[str, Any]], quantile: float) -> Dict[str, Any]:
    rank = max(1, math.ceil(quantile * len(records)))
    return records[min(rank, len(records)) - 1]


def _point(record: Dict[str, Any], scale: float) -> Dict[str, Any]:
    return {
        "total_ms": record["total"] * scale,
        "stage_ms": {
            stage: record["stages"].get(stage, 0.0) * scale
            for stage in REPORT_STAGES
            if stage in record["stages"]
        },
    }


def attribute_trace(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate per-stage attribution for every request in ``doc``.

    Values are milliseconds when the document's clock is ``wall`` (span
    timestamps are seconds); for ``cycles``/step-clock documents the
    ``_ms`` keys carry raw clock units and ``unit`` says so — the shape
    stays identical so callers need no branching.
    """
    other = doc.get("otherData", {}) if isinstance(doc, dict) else {}
    clock = other.get("clock", "wall")
    scale = 1000.0 if clock == "wall" else 1.0
    records = attribute_requests(doc)
    result: Dict[str, Any] = {
        "clock": clock,
        "unit": "ms" if clock == "wall" else str(clock),
        "requests": len(records),
        "stages": list(REPORT_STAGES),
    }
    if not records:
        return result
    mean_total = sum(r["total"] for r in records) / len(records)
    mean_stages: Dict[str, float] = {}
    for record in records:
        for stage, value in record["stages"].items():
            mean_stages[stage] = mean_stages.get(stage, 0.0) + value
    result["mean"] = {
        "total_ms": mean_total * scale,
        "stage_ms": {
            stage: mean_stages[stage] * scale / len(records)
            for stage in REPORT_STAGES
            if stage in mean_stages
        },
    }
    result["p50"] = _point(_nearest_rank(records, 0.50), scale)
    result["p99"] = _point(_nearest_rank(records, 0.99), scale)
    return result


def render_attribution(result: Dict[str, Any]) -> str:
    """Human-readable stage table for :func:`attribute_trace` output."""
    unit = result.get("unit", "ms")
    lines = [
        f"requests: {result.get('requests', 0)}  (clock: {result.get('clock')}, "
        f"values in {unit})"
    ]
    if "mean" not in result:
        lines.append("no request roots found in trace")
        return "\n".join(lines)
    header = f"{'stage':<14} {'p50':>12} {'p99':>12} {'mean':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    points = {name: result[name] for name in ("p50", "p99", "mean")}
    seen = set()
    for point in points.values():
        seen.update(point["stage_ms"])
    for stage in REPORT_STAGES:
        if stage not in seen:
            continue
        cells = [
            f"{points[name]['stage_ms'].get(stage, 0.0):12.4f}"
            for name in ("p50", "p99", "mean")
        ]
        lines.append(f"{stage:<14} " + " ".join(cells))
    totals = [f"{points[name]['total_ms']:12.4f}" for name in ("p50", "p99", "mean")]
    lines.append(f"{'total':<14} " + " ".join(totals))
    return "\n".join(lines)
