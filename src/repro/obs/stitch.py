"""Cross-process trace stitching: shard rings merged under the router.

A routed request crosses three processes — router, shard service, pool
worker — and each keeps its own span ring with its own small-integer
span ids and its own clock origin.  The router's collector fetches each
live shard's ``GET /trace`` document and hands them here, where they
become *one* Chrome trace:

* **pid assignment** — the router keeps ``pid=1``; shards get
  ``pid=2, 3, ...`` in sorted shard-id order, each with its own
  ``process_name`` metadata event, so Perfetto shows one track per
  process.
* **span-id rebasing** — shard span ids are offset by a per-shard
  stride (:data:`SHARD_SPAN_STRIDE`) so ids stay unique across the
  merged document while remaining small and readable.
* **remote-parent rewrite** — a shard request span carries the
  ``remote_trace_id`` / ``remote_parent`` args it received via the
  ``X-Repro-Trace`` header.  When they name this router's trace, the
  span is re-parented under the router's ``forward`` span (the
  *unoffset* router id), and its whole subtree's timestamps are shifted
  so the subtree starts exactly at the forward span's start.  The shift
  is what makes the merge meaningful across unsynchronized clocks —
  and, under the deterministic step clock, byte-identical across runs.

Everything here is pure data transformation: no clocks, no I/O — the
module stays inside the RPL007 no-wall-clock contract for ``obs/``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Span-id offset between adjacent shard processes in a merged trace.
SHARD_SPAN_STRIDE = 1_000_000


def _require_doc(doc: Any, what: str) -> None:
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{what} is not a Chrome trace document")
    other = doc.get("otherData")
    if not isinstance(other, dict) or not isinstance(other.get("trace_id"), str):
        raise ValueError(f"{what} lacks otherData.trace_id")


def _copy_event(event: Dict[str, Any], pid: int) -> Dict[str, Any]:
    out = dict(event)
    out["pid"] = pid
    args = out.get("args")
    out["args"] = dict(args) if isinstance(args, dict) else {}
    return out


def _span_id(event: Dict[str, Any], what: str) -> int:
    span_id = event["args"].get("span_id")
    if not isinstance(span_id, int) or isinstance(span_id, bool):
        raise ValueError(f"{what} event {event.get('name')!r} lacks an int span_id")
    return span_id


def _subtree_shifts(
    events: List[Dict[str, Any]],
    router_trace_id: str,
    router_span_ts: Dict[int, float],
) -> Dict[int, Tuple[float, Optional[int]]]:
    """Per-span (ts shift, remote parent) for one shard's events.

    Spans whose ``remote_trace_id``/``remote_parent`` args name a span
    in the router ring root a *remote subtree*: the root is re-parented
    under the router span and the root's shift (router parent ts minus
    root ts) propagates to every descendant.  Spans outside any remote
    subtree keep shift 0 and their local parentage.
    """
    children: Dict[int, List[int]] = {}
    ts_of: Dict[int, float] = {}
    for event in events:
        args = event["args"]
        span_id = _span_id(event, "shard")
        ts_of[span_id] = float(event.get("ts", 0.0))
        parent = args.get("parent_id", 0)
        if isinstance(parent, int) and parent > 0:
            children.setdefault(parent, []).append(span_id)

    shifts: Dict[int, Tuple[float, Optional[int]]] = {}
    for event in events:
        args = event["args"]
        remote_parent = args.get("remote_parent")
        if (
            args.get("remote_trace_id") != router_trace_id
            or not isinstance(remote_parent, int)
            or remote_parent not in router_span_ts
        ):
            continue
        root_id = _span_id(event, "shard")
        shift = router_span_ts[remote_parent] - ts_of[root_id]
        shifts[root_id] = (shift, remote_parent)
        stack = list(children.get(root_id, ()))
        while stack:
            span_id = stack.pop()
            if span_id in shifts:
                continue
            shifts[span_id] = (shift, None)
            stack.extend(children.get(span_id, ()))
    return shifts


def stitch_cluster_trace(
    router_doc: Dict[str, Any],
    shard_docs: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge shard trace documents into the router's, one pid per process.

    ``shard_docs`` maps shard id → that shard's ``GET /trace`` document.
    Shards are merged in sorted shard-id order so the output is
    deterministic for a deterministic input set.
    """
    _require_doc(router_doc, "router trace")
    router_other = router_doc["otherData"]
    trace_id = router_other["trace_id"]

    events: List[Dict[str, Any]] = []
    router_span_ts: Dict[int, float] = {}
    for event in router_doc["traceEvents"]:
        out = _copy_event(event, pid=1)
        events.append(out)
        if out.get("ph") == "X":
            router_span_ts[_span_id(out, "router")] = float(out.get("ts", 0.0))

    for index, shard_id in enumerate(sorted(shard_docs)):
        doc = shard_docs[shard_id]
        _require_doc(doc, f"shard {shard_id!r} trace")
        pid = index + 2
        offset = (index + 1) * SHARD_SPAN_STRIDE
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": f"repro:{shard_id}"},
            }
        )
        shard_events = [
            _copy_event(event, pid=pid)
            for event in doc["traceEvents"]
            if event.get("ph") != "M"
        ]
        shifts = _subtree_shifts(shard_events, trace_id, router_span_ts)
        for out in shard_events:
            args = out["args"]
            span_id = _span_id(out, "shard")
            shift, remote_parent = shifts.get(span_id, (0.0, None))
            if shift:
                out["ts"] = float(out.get("ts", 0.0)) + shift
            args["span_id"] = span_id + offset
            parent = args.get("parent_id", 0)
            if remote_parent is not None:
                # Cross-process link: parent under the *router's* span id.
                args["parent_id"] = remote_parent
            elif isinstance(parent, int) and parent > 0:
                args["parent_id"] = parent + offset
            events.append(out)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "clock": router_other.get("clock", "wall"),
            "stitched_shards": sorted(shard_docs),
        },
    }
