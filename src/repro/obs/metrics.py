"""Unified metrics registry: counters, gauges, histograms, one renderer.

Replaces the hand-rolled per-subsystem metric rendering with a single
registry that the simulator, experiment runner, faults layer, and
mapping service all publish into.  Invariants:

* **Int counters** (RPL005) — :class:`Counter` rejects non-integral
  values; floats belong in gauges/histograms.
* **No clocks** — the registry stores values only; anything time-shaped
  is observed by the caller with *its* injected clock and pushed in.
* **Deterministic rendering** — families render in registration order,
  series in creation order, ints bare and floats as ``%.6f``, so two
  runs with identical counter values produce byte-identical exposition
  text (the PR-4 chaos harness depends on this).

:func:`global_registry` is the process-wide "one source of truth" that
``bench_report.py`` snapshots; the service keeps its own registry (one
per :class:`~repro.service.app.MappingService`) so concurrent service
instances in tests do not share counters.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

#: Label set: sorted tuple of (key, value) pairs.
Labels = Tuple[Tuple[str, str], ...]


def nearest_rank_index(q: float, n: int) -> int:
    """Nearest-rank quantile index: ``ceil(q*n) - 1`` clamped to [0, n).

    This is the standard nearest-rank definition; the old
    ``int(q * n)`` truncation was biased (p50 of 2 samples picked the
    *upper* sample, p99 of 100 picked index 99 instead of 98).
    """
    if n <= 0:
        raise ValueError("quantile of an empty series")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    return min(n - 1, max(0, math.ceil(q * n) - 1))


def _labels_key(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic-by-convention integer counter."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (an int) to the counter."""
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise TypeError(f"counter {self.name} takes int increments, got {amount!r}")
        self._value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (used when folding external int counters)."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"counter {self.name} takes int values, got {value!r}")
        self._value = value


class Gauge:
    """Point-in-time numeric value (int or float)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value: Any = 0

    @property
    def value(self) -> Any:
        """Current gauge value."""
        return self._value

    def set(self, value: Any) -> None:
        """Overwrite the gauge."""
        self._value = value


class CallbackGauge:
    """Gauge whose value is computed on read (derived metrics)."""

    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self._fn = fn

    @property
    def value(self) -> Any:
        """Evaluate the callback."""
        return self._fn()


class Histogram:
    """Bounded sliding-window reservoir with nearest-rank quantiles.

    Not rendered in exposition text (quantiles are exported as derived
    gauges by the owner); the reservoir itself is the source of truth.
    """

    kind = "histogram"

    def __init__(self, name: str, window: int = 2048):
        self.name = name
        self._values: Deque[float] = deque(maxlen=max(1, window))
        self._observed = 0

    @property
    def count(self) -> int:
        """Total observations (including ones evicted from the window)."""
        return self._observed

    @property
    def value(self) -> int:
        """Alias for :attr:`count` (registry uniformity)."""
        return self._observed

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._observed += 1

    def quantile(self, q: float, default: float = 0.0) -> float:
        """Nearest-rank quantile over the current window."""
        if not self._values:
            return default
        ordered = sorted(self._values)
        return ordered[nearest_rank_index(q, len(ordered))]


class MetricsRegistry:
    """Named metric families with deterministic rendering."""

    def __init__(self, prefix: str = ""):
        #: Prepended to every family name in :meth:`render`.
        self.prefix = prefix
        self._order: List[str] = []
        self._kinds: Dict[str, str] = {}
        self._series: Dict[str, "Dict[Labels, Any]"] = {}

    def _family(self, name: str, kind: str) -> Dict[Labels, Any]:
        known = self._kinds.get(name)
        if known is None:
            self._order.append(name)
            self._kinds[name] = kind
            self._series[name] = {}
        elif known != kind:
            raise ValueError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )
        return self._series[name]

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        family = self._family(name, "counter")
        key = _labels_key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Counter(name)
        return metric

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        family = self._family(name, "gauge")
        key = _labels_key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Gauge(name)
        return metric

    def callback_gauge(
        self,
        name: str,
        fn: Callable[[], Any],
        labels: Optional[Dict[str, str]] = None,
    ) -> CallbackGauge:
        """Register (or replace) a derived gauge computed on read."""
        family = self._family(name, "gauge")
        metric = CallbackGauge(name, fn)
        family[_labels_key(labels)] = metric
        return metric

    def histogram(
        self,
        name: str,
        window: int = 2048,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        family = self._family(name, "histogram")
        key = _labels_key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Histogram(name, window=window)
        return metric

    def families(self) -> Sequence[str]:
        """Family names in registration order."""
        return tuple(self._order)

    def render(self) -> str:
        """Prometheus-style exposition text.

        Histograms are skipped (their quantiles are surfaced as derived
        gauges by the owner); ints render bare, floats as ``%.6f`` —
        the exact pre-registry ``ServiceMetrics.render`` format.
        """
        lines: List[str] = []
        for name in self._order:
            kind = self._kinds[name]
            if kind == "histogram":
                continue
            full = f"{self.prefix}{name}"
            lines.append(f"# TYPE {full} {kind}")
            for key, metric in self._series[name].items():
                value = metric.value
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TypeError(
                        f"metric {name!r} rendered a non-numeric value {value!r}"
                    )
                text = str(value) if isinstance(value, int) else f"{value:.6f}"
                if key:
                    label_text = ",".join(f'{k}="{v}"' for k, v in key)
                    lines.append(f"{full}{{{label_text}}} {text}")
                else:
                    lines.append(f"{full} {text}")
        return "\n".join(lines) + "\n"


_global: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    """The process-wide registry (prefix ``repro_``), created lazily."""
    global _global
    if _global is None:
        _global = MetricsRegistry(prefix="repro_")
    return _global


def reset_global_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (tests)."""
    global _global
    _global = MetricsRegistry(prefix="repro_")
    return _global
