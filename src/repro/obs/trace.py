"""Deterministic nested spans with dual clocks.

Every span carries **two** time axes:

* **cycles** — simulated cycle time handed in explicitly by the caller
  (the engine's counters), bit-exact and seed-stable.  Sites outside the
  simulation (service, runner) pass 0 and rely on the wall track.
* **wall** — an *injected* monotonic clock.  This module performs zero
  wall-time reads of its own (RPL002/RPL007): when no clock is injected
  the tracer falls back to a deterministic internal step counter, which
  is what makes ``repro trace`` exports byte-identical across runs.

Span ids are sequential small ints, parentage is explicit (``parent=``)
or taken from an opt-in nesting stack (``nest=True``, the default) that
synchronous pipelines use for free; async call sites pass ``nest=False``
and thread parents by hand because interleaved requests would corrupt a
shared stack.

Hot paths can keep their instrumentation always-on and pay (almost)
nothing for it via **deterministic sampling**: ``sample_every=N`` keeps
1-in-N spans, chosen by a seeded counter phase
(:func:`repro.util.rng.derive_seed` — no entropy, no clock, RPL007
clean), so two runs of one workload sample the *same* spans.  A
sampled-out ``begin`` returns a shared pre-allocated skip span — no
allocation, no timestamp, no ring traffic — and ``end`` recognizes it
by identity; :attr:`Tracer.sampled_out_total` keeps the export honest
about what was dropped (:attr:`Tracer.started_total` counts only
recorded spans).

The module-global tracer follows the fault injector's pattern exactly:
:func:`activate_tracing` / :func:`deactivate_tracing` / :func:`tracing`
manage a process-global tracer, and :func:`get_tracer` lazily adopts a
:class:`~repro.obs.context.TraceContext` from the environment so process
pool children join the parent's trace without any plumbing through the
executor call.
"""

from __future__ import annotations

import json
import os
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.obs.context import TRACE_ENV_VAR, TraceContext
from repro.obs.stages import stage_of
from repro.util.rng import derive_seed

#: Sentinel distinguishing "no parent passed" from "explicitly parentless".
_UNSET = object()

Args = Dict[str, Any]


class Span:
    """One timed (or instant) region of work on both clocks."""

    __slots__ = (
        "name",
        "cat",
        "span_id",
        "parent_id",
        "kind",
        "t0_cycles",
        "t1_cycles",
        "t0_wall",
        "t1_wall",
        "args",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        span_id: int,
        parent_id: int,
        kind: str,
        t0_cycles: int,
        t0_wall: float,
    ):
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent_id = parent_id
        #: ``"span"`` (has duration) or ``"event"`` (instant).
        self.kind = kind
        self.t0_cycles = t0_cycles
        self.t1_cycles = t0_cycles
        self.t0_wall = t0_wall
        self.t1_wall = t0_wall
        self.args: Args = {}

    def to_record(self) -> Dict[str, Any]:
        """Compact JSONL record (one line per completed span)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "c0": self.t0_cycles,
            "c1": self.t1_cycles,
            "w0": self.t0_wall,
            "w1": self.t1_wall,
            "args": self.args,
        }


class Tracer:
    """Span factory with a bounded completed-span ring buffer."""

    #: Fast-path flag: call sites guard instrumentation on this.
    enabled = True

    __slots__ = (
        "trace_id",
        "_wall",
        "_steps",
        "_next_id",
        "default_parent",
        "_stack",
        "_ring",
        "_sink",
        "started_total",
        "stage_counts",
        "sample_every",
        "sampled_out_total",
        "_sample_phase",
        "_sample_seen",
        "_skip_span",
    )

    def __init__(
        self,
        trace_id: str = "trace",
        wall_clock: Optional[Callable[[], float]] = None,
        capacity: int = 65536,
        default_parent: Optional[int] = None,
        sink: Optional["JsonlSink"] = None,
        sample_every: int = 1,
        sample_seed: int = 0,
    ):
        self.trace_id = trace_id
        self._wall = wall_clock
        #: Deterministic fallback clock: one tick per timestamp taken.
        self._steps = 0
        self._next_id = 1
        self.default_parent = 0 if default_parent is None else default_parent
        self._stack: List[int] = []
        self._ring: Deque[Span] = deque(maxlen=max(1, capacity))
        self._sink = sink
        #: Recorded spans started (ended or not) — the hook-count for
        #: overhead math; sampled-out begins do not count here.
        self.started_total = 0
        #: Committed spans per attribution stage (repro.obs.stages);
        #: surfaced as trace_stage_* counters on /metrics.
        self.stage_counts: Dict[str, int] = {}
        #: Keep 1-in-N spans (1 = keep everything).
        self.sample_every = max(1, int(sample_every))
        #: Begins dropped by the sampler (export honesty counter).
        self.sampled_out_total = 0
        # The kept residue class is a pure function of (seed, trace_id),
        # so one workload samples identically across runs/processes.
        self._sample_phase = (
            derive_seed(sample_seed, trace_id, "span-sample") % self.sample_every
        )
        self._sample_seen = 0
        #: Shared skip span handed out for sampled-out begins; ``end``
        #: and ``event`` recognize it by identity and never mutate it.
        self._skip_span = Span("", "", 0, 0, "span", 0, 0.0)

    def _now_wall(self) -> float:
        if self._wall is not None:
            return float(self._wall())
        self._steps += 1
        return float(self._steps)

    @property
    def clock(self) -> str:
        """Wall-axis label for exports: ``"wall"`` when a monotonic
        clock was injected, ``"step"`` for the deterministic fallback."""
        return "wall" if self._wall is not None else "step"

    def begin(
        self,
        name: str,
        cat: str = "",
        cycles: int = 0,
        parent: Any = _UNSET,
        args: Optional[Args] = None,
        nest: bool = True,
    ) -> Span:
        """Open a span; close it with :meth:`end`.

        ``parent`` defaults to the top of the nesting stack (then
        :attr:`default_parent`); pass ``parent=None`` for an explicit
        root or an int span id for manual linkage.  ``nest=False`` keeps
        the span off the stack (required at async call sites).

        With ``sample_every=N > 1``, N-1 of every N begins return the
        shared skip span without recording anything; sampled-out spans
        are never pushed on the nesting stack, so surviving children
        attach to their nearest *recorded* ancestor.
        """
        if self.sample_every > 1:
            seen = self._sample_seen
            self._sample_seen = seen + 1
            if seen % self.sample_every != self._sample_phase:
                self.sampled_out_total += 1
                return self._skip_span
        if parent is _UNSET:
            pid = self._stack[-1] if self._stack else self.default_parent
        elif parent is None:
            pid = 0
        else:
            pid = int(parent)
        span = Span(
            name,
            cat,
            self._next_id,
            pid,
            "span",
            int(cycles),
            self._now_wall(),
        )
        self._next_id += 1
        self.started_total += 1
        if args:
            span.args.update(args)
        if nest:
            self._stack.append(span.span_id)
        return span

    def end(
        self,
        span: Span,
        cycles: Optional[int] = None,
        args: Optional[Args] = None,
    ) -> None:
        """Close ``span``, record end timestamps, commit it to the ring."""
        if span is self._skip_span:
            return
        span.t1_cycles = span.t0_cycles if cycles is None else int(cycles)
        span.t1_wall = self._now_wall()
        if args:
            span.args.update(args)
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self._commit(span)

    def event(
        self,
        name: str,
        cat: str = "",
        cycles: int = 0,
        parent: Any = _UNSET,
        args: Optional[Args] = None,
    ) -> Span:
        """Record an instant event (committed immediately)."""
        span = self.begin(name, cat, cycles=cycles, parent=parent, args=args, nest=False)
        if span is self._skip_span:
            return span
        span.kind = "event"
        span.t1_cycles = span.t0_cycles
        span.t1_wall = span.t0_wall
        self._commit(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "",
        cycles: int = 0,
        parent: Any = _UNSET,
        args: Optional[Args] = None,
    ) -> Iterator[Span]:
        """Context-manager sugar over :meth:`begin` / :meth:`end`."""
        s = self.begin(name, cat, cycles=cycles, parent=parent, args=args)
        try:
            yield s
        finally:
            self.end(s, cycles=cycles if cycles else None)

    def _commit(self, span: Span) -> None:
        stage = stage_of(span.name)
        if stage is not None:
            self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
        self._ring.append(span)
        if self._sink is not None:
            self._sink.write(span)

    def child_context(
        self,
        parent: Optional[Span] = None,
        export_dir: Optional[str] = None,
    ) -> TraceContext:
        """A :class:`TraceContext` linking children under ``parent``."""
        pid = parent.span_id if parent is not None else self.default_parent
        return TraceContext(
            trace_id=self.trace_id, parent_span_id=pid, export_dir=export_dir
        )

    def snapshot(self) -> List[Span]:
        """Completed spans, oldest first (bounded by the ring capacity)."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop completed spans (ids and clocks keep advancing)."""
        self._ring.clear()


class NullTracer(Tracer):
    """Disabled tracer: every hook is a constant-time no-op."""

    enabled = False

    __slots__ = ("_null_span",)

    def __init__(self) -> None:
        super().__init__(trace_id="null", capacity=1)
        self._null_span = Span("", "", 0, 0, "span", 0, 0.0)

    def begin(
        self,
        name: str,
        cat: str = "",
        cycles: int = 0,
        parent: Any = _UNSET,
        args: Optional[Args] = None,
        nest: bool = True,
    ) -> Span:
        """Return the shared dummy span without recording anything."""
        return self._null_span

    def end(
        self,
        span: Span,
        cycles: Optional[int] = None,
        args: Optional[Args] = None,
    ) -> None:
        """Discard the span."""

    def event(
        self,
        name: str,
        cat: str = "",
        cycles: int = 0,
        parent: Any = _UNSET,
        args: Optional[Args] = None,
    ) -> Span:
        """Discard the event."""
        return self._null_span

    def snapshot(self) -> List[Span]:
        """Always empty."""
        return []


#: Shared disabled tracer handed out while tracing is inactive.
NULL_TRACER = NullTracer()

_active: Optional[Tracer] = None


class JsonlSink:
    """Append-only JSONL span stream (one file per writing process)."""

    def __init__(self, path: str):
        self.path = path

    def write(self, span: Span) -> None:
        """Append one compact JSON line for ``span``."""
        line = json.dumps(
            span.to_record(), sort_keys=True, separators=(",", ":")
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")


def activate_tracing(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer."""
    global _active
    _active = tracer
    return tracer


def deactivate_tracing() -> None:
    """Remove the process-global tracer (hooks go back to the no-op)."""
    global _active
    _active = None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`activate_tracing` / :func:`deactivate_tracing`."""
    global _active
    previous = _active
    activate_tracing(tracer)
    try:
        yield tracer
    finally:
        _active = previous


def tracer_from_context(ctx: TraceContext) -> Tracer:
    """Build a child tracer joining the trace described by ``ctx``.

    The child uses the deterministic step clock (children never get an
    injected wall clock across a process boundary) and streams spans to
    ``<export_dir>/worker-<pid>.jsonl`` when an export dir is set.
    """
    sink = None
    if ctx.export_dir:
        sink = JsonlSink(
            os.path.join(ctx.export_dir, f"worker-{os.getpid()}.jsonl")
        )
    return Tracer(
        trace_id=ctx.trace_id,
        default_parent=ctx.parent_span_id or None,
        sink=sink,
    )


def get_tracer() -> Tracer:
    """The active tracer, adopting any environment trace context.

    Mirrors ``repro.faults.injector.get_injector``: if no tracer was
    activated in-process but :data:`TRACE_ENV_VAR` is set (a pool child
    spawned inside a traced parent), a child tracer is built from it and
    activated.  Otherwise the shared :data:`NULL_TRACER` is returned.
    """
    if _active is not None:
        return _active
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw:
        return activate_tracing(tracer_from_context(TraceContext.from_json(raw)))
    return NULL_TRACER


def _reset_for_tests() -> None:
    """Deactivate tracing and scrub the environment (test hygiene)."""
    deactivate_tracing()
    os.environ.pop(TRACE_ENV_VAR, None)
