"""Canonical latency-attribution stage taxonomy.

Span names are free-form at the instrumentation site, but latency
attribution and the per-stage ``/metrics`` counters need a fixed,
documented vocabulary (DESIGN.md §17).  :func:`stage_of` is the single
mapping from span name to stage: the router-side stages (``route``,
``ring.lookup``, ``forward``, ``replicate``) and the shard-side stages
(``queue``, ``canonicalize``, ``solve``, ``render``).  The whole solve
machinery — the batcher's ``batch.run`` wrapper, the service-side
``solve.batch`` dispatch and the pool worker's ``worker.solve_batch`` —
collapses onto the single ``solve`` stage, so attribution reports where
a request *waited* versus where it *computed* without exposing executor
internals as stages.

Spans outside the taxonomy (the ``request:/map`` roots whose self-time
is parse/validate/cache glue, or future experiment spans) attribute
their self-time to :data:`OTHER_STAGE` rather than being dropped: every
microsecond of a request's duration lands in exactly one bucket, which
is what lets the attribution table sum back to the measured total.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: The fixed stage vocabulary, in critical-path order.
STAGES: Tuple[str, ...] = (
    "route",
    "ring.lookup",
    "forward",
    "queue",
    "canonicalize",
    "solve",
    "replicate",
    "render",
)

#: Bucket for self-time of spans outside the taxonomy.
OTHER_STAGE = "other"

#: Span names that root one request's critical path in a trace document:
#: the router's ``route`` span in a stitched cluster trace, or the
#: service's ``request:/...`` span in a standalone shard trace.
REQUEST_ROOT_NAMES = frozenset({"route", "request:/map", "request:/map/delta"})

_SPAN_STAGES = {
    "route": "route",
    "ring.lookup": "ring.lookup",
    "forward": "forward",
    "queue": "queue",
    "canonicalize": "canonicalize",
    "render": "render",
    "replicate": "replicate",
    "batch.run": "solve",
    "solve.batch": "solve",
    "worker.solve_batch": "solve",
}


def stage_of(span_name: str) -> Optional[str]:
    """Stage for a span name, or ``None`` when outside the taxonomy."""
    return _SPAN_STAGES.get(span_name)
