"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
offline machines whose setuptools lacks PEP 660 editable support
(no ``wheel`` package available).
"""
from setuptools import setup

setup()
